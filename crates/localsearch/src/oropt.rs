//! The simulated-device `or_opt` kernel family.
//!
//! [`crate::LocalSearch::OrOpt`] used to run on the host with a device
//! write-back on GPU backends; this family executes the pass on the
//! device, in the same Propose/Select/Apply shape as the `two_opt`
//! family. One improvement **round** is four launches driven by
//! [`run_or_opt`], over a *window* of ant rows (one ant for the
//! iteration-best scope, all `m` for the all-ants hybrid — either way
//! `O(rounds)` launches per pass):
//!
//! 1. [`OrOptPosKernel`] — scatter `pos[city] = index` per windowed ant
//!    and refresh the θ-padding.
//! 2. [`OrOptProposeKernel`] — **one segment start per thread**: thread
//!    `p` evaluates relocating the segments starting at tour position
//!    `p` (lengths 1–3, forward or reversed) after each nearest
//!    neighbour of the segment head, exactly the candidate set of
//!    [`crate::cpu::or_opt`]. The CPU pass is *first*-improvement in
//!    `(seg_len, p, rank)` scan order, so instead of a gain reduction
//!    the family reduces a **scan key** — `((seg_len-1)·(n+1) + p)·nn +
//!    rank`, whose numeric order *is* the scan order — to its minimum:
//!    the move the CPU sweep would have applied.
//! 3. [`OrOptSelectKernel`] — one block per windowed ant folds its
//!    per-block keys into the ant's chosen move.
//! 4. [`OrOptApplyKernel`] — splice the segment after the candidate
//!    (re-deriving the reversed flag from the same `f32` cost
//!    expressions), rebuild the ant's row through a device scratch row,
//!    and settle the ant's device length.
//!
//! **CPU equivalence.** All costs are sums/differences of integer
//! distances; at TSPLIB scales every intermediate is an integer below
//! 2²⁴, where `f32` arithmetic is exact, so the device comparisons
//! (`removal > 0`, `fwd <= rev`, `removal - cost > 0`) decide exactly
//! as the CPU's `i64` ones and the chosen key is the CPU's chosen move.
//! On the same input tours both sides produce the **same order arrays**
//! — pinned by the tests below and the cross-crate suite. Every launch
//! goes through [`aco_simt::launch_threads`], so counters, modeled
//! times and memory are bit-identical at any host `exec_threads` count.

use aco_simt::prelude::*;
use aco_simt::SimtError;

use crate::gpu::LS_BLOCK;

/// Device state of the `or_opt` family: colony buffers it reads plus
/// per-ant slices of its own scratch. `Copy` so kernels capture it.
#[derive(Debug, Clone, Copy)]
pub struct OrOptDev {
    /// Cities.
    pub n: u32,
    /// Ant count (tour rows; kernels run over a window of them).
    pub ants: u32,
    /// Candidate-list depth.
    pub nn: u32,
    /// Row stride of the per-ant tour array.
    pub stride: u32,
    /// `n x n` distances, f32.
    pub dist: DevicePtr<f32>,
    /// `m x stride` tours (improved in place).
    pub tours: DevicePtr<u32>,
    /// `m` tour lengths, f32 (gain-adjusted in place).
    pub lengths: DevicePtr<f32>,
    /// `n x nn` nearest-neighbour lists.
    pub nn_list: DevicePtr<u32>,
    /// `m x n` positions: `pos[ant*n + city] = index` in the ant's order.
    pub pos: DevicePtr<u32>,
    /// Per-block minimum scan key (`m x pgrid`, ant-major).
    pub block_key: DevicePtr<u32>,
    /// Per-block winning segment start.
    pub block_p: DevicePtr<u32>,
    /// Per-block winning segment length.
    pub block_seg: DevicePtr<u32>,
    /// Per-block winning candidate rank.
    pub block_rank: DevicePtr<u32>,
    /// Each ant's chosen key this round (`m`; `u32::MAX` = no move —
    /// the host's termination read).
    pub chosen_key: DevicePtr<u32>,
    /// Each ant's chosen segment start.
    pub chosen_p: DevicePtr<u32>,
    /// Each ant's chosen segment length.
    pub chosen_seg: DevicePtr<u32>,
    /// Each ant's chosen candidate rank.
    pub chosen_rank: DevicePtr<u32>,
    /// `m x n` rebuild scratch (the spliced order, copied back in the
    /// apply kernel's second phase).
    pub tmp: DevicePtr<u32>,
}

impl OrOptDev {
    /// Allocate the family's scratch next to an existing colony's
    /// buffers (distances / tours / lengths / candidate lists are
    /// borrowed from the colony, not copied).
    #[allow(clippy::too_many_arguments)]
    pub fn allocate(
        gm: &mut GlobalMem,
        n: u32,
        ants: u32,
        nn: u32,
        stride: u32,
        dist: DevicePtr<f32>,
        tours: DevicePtr<u32>,
        lengths: DevicePtr<f32>,
        nn_list: DevicePtr<u32>,
    ) -> Self {
        let pgrid = n.div_ceil(LS_BLOCK) as usize;
        let m = ants as usize;
        OrOptDev {
            n,
            ants,
            nn,
            stride,
            dist,
            tours,
            lengths,
            nn_list,
            pos: gm.alloc_u32(m * n as usize),
            block_key: gm.alloc_u32(m * pgrid),
            block_p: gm.alloc_u32(m * pgrid),
            block_seg: gm.alloc_u32(m * pgrid),
            block_rank: gm.alloc_u32(m * pgrid),
            chosen_key: gm.alloc_u32(m),
            chosen_p: gm.alloc_u32(m),
            chosen_seg: gm.alloc_u32(m),
            chosen_rank: gm.alloc_u32(m),
            tmp: gm.alloc_u32(m * n as usize),
        }
    }

    /// Propose blocks per ant (one thread per segment start).
    pub fn pgrid(&self) -> u32 {
        self.n.div_ceil(LS_BLOCK)
    }

    /// Position-scatter blocks per ant (one thread per padded cell).
    fn posgrid(&self) -> u32 {
        self.stride.div_ceil(LS_BLOCK)
    }

    /// Longest relocatable segment (the CPU pass's `3.min(n - 4)`).
    fn seg_max(&self) -> u32 {
        3.min(self.n.saturating_sub(4))
    }
}

/// Position scatter + padding refresh for a window of ant rows.
pub struct OrOptPosKernel {
    /// Family buffers.
    pub bufs: OrOptDev,
    /// First ant of the window.
    pub first_ant: u32,
    /// Ants in the window.
    pub num_ants: u32,
}

impl OrOptPosKernel {
    /// One thread per padded tour cell, window-wide.
    pub fn config(&self) -> LaunchConfig {
        LaunchConfig::new(self.num_ants * self.bufs.posgrid(), LS_BLOCK).regs(10)
    }
}

impl Kernel for OrOptPosKernel {
    fn name(&self) -> &'static str {
        "or_opt_pos"
    }

    fn run_block(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem) {
        let n = self.bufs.n;
        let per_ant = self.bufs.posgrid();
        let ant = self.first_ant + ctx.block_idx / per_ant;
        let blk = ctx.block_idx % per_ant;
        let base = ant * self.bufs.stride;
        let row = ant * n;
        let off = ctx.splat_u32(blk * LS_BLOCK);
        let lane = ctx.thread_idx();
        let idx = ctx.iadd(&off, &lane);
        let n_reg = ctx.splat_u32(n);
        let in_n = ctx.ult(&idx, &n_reg);
        let base_reg = ctx.splat_u32(base);
        let row_reg = ctx.splat_u32(row);
        let g_idx = ctx.iadd(&base_reg, &idx);
        ctx.if_then(gm, &in_n, |ctx, gm| {
            let city = ctx.ld_global_u32(gm, self.bufs.tours, &g_idx);
            let p_idx = ctx.iadd(&row_reg, &city);
            ctx.st_global_u32(gm, self.bufs.pos, &p_idx, &idx);
        });
        let stride_reg = ctx.splat_u32(self.bufs.stride);
        let in_pad = ctx.ult(&idx, &stride_reg).and(&in_n.not());
        ctx.if_then(gm, &in_pad, |ctx, gm| {
            let start_idx = ctx.splat_u32(base);
            let start = ctx.ld_global_u32(gm, self.bufs.tours, &start_idx);
            ctx.st_global_u32(gm, self.bufs.tours, &g_idx, &start);
        });
    }
}

/// Shared-memory tree reduction of `(key, p, seg, rank)` down to lane 0,
/// preferring the **lower** key — the first-improvement scan order.
/// Keys are unique per move, so no tie-break is needed. `emit` runs
/// under the lane-0 mask with the winning values.
fn block_reduce_min_key(
    ctx: &mut BlockCtx,
    gm: &mut GlobalMem,
    key: &Reg<u32>,
    p: &Reg<u32>,
    seg: &Reg<u32>,
    rank: &Reg<u32>,
    emit: impl FnOnce(&mut BlockCtx, &mut GlobalMem, &Reg<u32>, &Reg<u32>, &Reg<u32>, &Reg<u32>),
) {
    let lane = ctx.thread_idx();
    let s_k = ctx.shared_alloc_u32(LS_BLOCK as usize);
    let s_p = ctx.shared_alloc_u32(LS_BLOCK as usize);
    let s_s = ctx.shared_alloc_u32(LS_BLOCK as usize);
    let s_r = ctx.shared_alloc_u32(LS_BLOCK as usize);
    ctx.sh_st_u32(s_k, &lane, key);
    ctx.sh_st_u32(s_p, &lane, p);
    ctx.sh_st_u32(s_s, &lane, seg);
    ctx.sh_st_u32(s_r, &lane, rank);
    ctx.sync_threads();
    let mut off = LS_BLOCK / 2;
    while off >= 1 {
        let off_reg = ctx.splat_u32(off);
        let low = ctx.ult(&lane, &off_reg);
        ctx.branch(&low);
        ctx.with_mask(gm, &low, |ctx, _gm| {
            let other = ctx.iadd(&lane, &off_reg);
            let k1 = ctx.sh_ld_u32(s_k, &lane);
            let k2 = ctx.sh_ld_u32(s_k, &other);
            let better = ctx.ult(&k2, &k1);
            let p1 = ctx.sh_ld_u32(s_p, &lane);
            let p2 = ctx.sh_ld_u32(s_p, &other);
            let g1 = ctx.sh_ld_u32(s_s, &lane);
            let g2 = ctx.sh_ld_u32(s_s, &other);
            let r1 = ctx.sh_ld_u32(s_r, &lane);
            let r2 = ctx.sh_ld_u32(s_r, &other);
            let nk = ctx.select_u32(&better, &k2, &k1);
            let np = ctx.select_u32(&better, &p2, &p1);
            let ns = ctx.select_u32(&better, &g2, &g1);
            let nr = ctx.select_u32(&better, &r2, &r1);
            ctx.sh_st_u32(s_k, &lane, &nk);
            ctx.sh_st_u32(s_p, &lane, &np);
            ctx.sh_st_u32(s_s, &lane, &ns);
            ctx.sh_st_u32(s_r, &lane, &nr);
        });
        ctx.sync_threads();
        off /= 2;
    }
    let lane0 = ctx.lane_mask(0);
    ctx.if_then(gm, &lane0, |ctx, gm| {
        let zero = ctx.splat_u32(0);
        let k = ctx.sh_ld_u32(s_k, &zero);
        let p = ctx.sh_ld_u32(s_p, &zero);
        let s = ctx.sh_ld_u32(s_s, &zero);
        let r = ctx.sh_ld_u32(s_r, &zero);
        emit(ctx, gm, &k, &p, &s, &r);
    });
}

/// Per-segment-start move proposal + per-block min-key reduction for a
/// window of ants (`pgrid` blocks per ant, ant-major).
pub struct OrOptProposeKernel {
    /// Family buffers.
    pub bufs: OrOptDev,
    /// First ant of the window.
    pub first_ant: u32,
    /// Ants in the window.
    pub num_ants: u32,
}

impl OrOptProposeKernel {
    /// One thread per segment start per windowed ant; shared memory
    /// holds the four reduction arrays (key, p, seg, rank).
    pub fn config(&self) -> LaunchConfig {
        LaunchConfig::new(self.num_ants * self.bufs.pgrid(), LS_BLOCK)
            .regs(32)
            .shared(4 * LS_BLOCK * 4)
    }
}

impl Kernel for OrOptProposeKernel {
    fn name(&self) -> &'static str {
        "or_opt_propose"
    }

    fn run_block(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem) {
        let n = self.bufs.n;
        let nn = self.bufs.nn;
        let per_ant = self.bufs.pgrid();
        let ant = self.first_ant + ctx.block_idx / per_ant;
        let blk = ctx.block_idx % per_ant;
        let base = ant * self.bufs.stride;
        let prow = ant * n;
        let off = ctx.splat_u32(blk * LS_BLOCK);
        let lane = ctx.thread_idx();
        let p = ctx.iadd(&off, &lane);
        let n_reg = ctx.splat_u32(n);
        let zero_f = ctx.splat_f32(0.0);
        let one_u = ctx.splat_u32(1);
        let base_reg = ctx.splat_u32(base);
        let prow_reg = ctx.splat_u32(prow);
        let nn_reg = ctx.splat_u32(nn);
        let max_u = ctx.splat_u32(u32::MAX);

        // Per-lane minimum scan key (sentinel MAX = no improving move),
        // with the winning (p, seg_len, rank) carried alongside.
        let mut best_key = max_u.clone();
        let mut best_p = ctx.splat_u32(0);
        let mut best_seg = ctx.splat_u32(1);
        let mut best_rank = ctx.splat_u32(0);

        // `prev` is shared by every segment length starting at p.
        let in_tour = ctx.ult(&p, &n_reg);
        ctx.branch(&in_tour);
        ctx.with_mask(gm, &in_tour, |ctx, gm| {
            let pn = ctx.iadd(&p, &n_reg);
            let pm1 = ctx.isub(&pn, &one_u);
            let pm1_over = ctx.ule(&n_reg, &pm1);
            let pm1_w = ctx.isub(&pm1, &n_reg);
            let prev_pos = ctx.select_u32(&pm1_over, &pm1_w, &pm1);
            let prev_g = ctx.iadd(&base_reg, &prev_pos);
            let prev = ctx.ld_global_u32(gm, self.bufs.tours, &prev_g);
            let p_nn = ctx.imul(&p, &nn_reg);

            for seg_len in 1..=self.bufs.seg_max() {
                // Eligible starts: p <= n - seg_len (the CPU loop's
                // inclusive upper bound).
                let bound = ctx.splat_u32(n - seg_len + 1);
                let elig = ctx.ult(&p, &bound);
                ctx.branch(&elig);
                ctx.with_mask(gm, &elig, |ctx, gm| {
                    let first_g = ctx.iadd(&base_reg, &p);
                    let first = ctx.ld_global_u32(gm, self.bufs.tours, &first_g);
                    let sm1 = ctx.splat_u32(seg_len - 1);
                    let last_pos = ctx.iadd(&p, &sm1);
                    let last_g = ctx.iadd(&base_reg, &last_pos);
                    let last = ctx.ld_global_u32(gm, self.bufs.tours, &last_g);
                    let s_reg = ctx.splat_u32(seg_len);
                    let next_raw = ctx.iadd(&p, &s_reg);
                    let next_over = ctx.ule(&n_reg, &next_raw);
                    let next_w = ctx.isub(&next_raw, &n_reg);
                    let next_pos = ctx.select_u32(&next_over, &next_w, &next_raw);
                    let next_g = ctx.iadd(&base_reg, &next_pos);
                    let next = ctx.ld_global_u32(gm, self.bufs.tours, &next_g);

                    // removal = d(prev, first) + d(last, next)
                    //         - d(prev, next); exact in f32 at integer
                    // distances (every term < 2^24).
                    let prev_row = ctx.imul(&prev, &n_reg);
                    let pf_idx = ctx.iadd(&prev_row, &first);
                    let d_pf = ctx.ld_tex_f32(gm, self.bufs.dist, &pf_idx);
                    let last_row = ctx.imul(&last, &n_reg);
                    let ln_idx = ctx.iadd(&last_row, &next);
                    let d_ln = ctx.ld_tex_f32(gm, self.bufs.dist, &ln_idx);
                    let pn_idx = ctx.iadd(&prev_row, &next);
                    let d_pn = ctx.ld_tex_f32(gm, self.bufs.dist, &pn_idx);
                    let rem_sum = ctx.fadd(&d_pf, &d_ln);
                    let removal = ctx.fsub(&rem_sum, &d_pn);
                    let rem_ok = ctx.fgt(&removal, &zero_f);

                    let first_nn = ctx.imul(&first, &nn_reg);
                    let first_row = ctx.imul(&first, &n_reg);
                    let seg_end = ctx.iadd(&p, &s_reg);
                    // Key base for this (seg_len, ·, ·) plane.
                    let plane = ctx.splat_u32((seg_len - 1) * (n + 1) * nn);
                    let key_p = ctx.iadd(&plane, &p_nn);

                    for k in 0..nn {
                        let k_reg = ctx.splat_u32(k);
                        let l_idx = ctx.iadd(&first_nn, &k_reg);
                        let c = ctx.ld_global_u32(gm, self.bufs.nn_list, &l_idx);
                        let cp_idx = ctx.iadd(&prow_reg, &c);
                        let cp = ctx.ld_global_u32(gm, self.bufs.pos, &cp_idx);
                        // Skip candidates inside the segment or equal to
                        // `prev` (splicing after either is degenerate).
                        let ge_p = ctx.ule(&p, &cp);
                        let lt_end = ctx.ult(&cp, &seg_end);
                        let in_seg = ge_p.and(&lt_end);
                        let is_prev = ctx.ueq(&c, &prev);
                        let usable = in_seg.or(&is_prev).not();

                        let cp1 = ctx.iadd(&cp, &one_u);
                        let cp1_over = ctx.ule(&n_reg, &cp1);
                        let cp1_w = ctx.isub(&cp1, &n_reg);
                        let cn_pos = ctx.select_u32(&cp1_over, &cp1_w, &cp1);
                        let cn_g = ctx.iadd(&base_reg, &cn_pos);
                        let c_next = ctx.ld_global_u32(gm, self.bufs.tours, &cn_g);

                        let c_row = ctx.imul(&c, &n_reg);
                        let ccn_idx = ctx.iadd(&c_row, &c_next);
                        let d_base = ctx.ld_tex_f32(gm, self.bufs.dist, &ccn_idx);
                        let cf_idx = ctx.iadd(&c_row, &first);
                        let d_cf = ctx.ld_tex_f32(gm, self.bufs.dist, &cf_idx);
                        let lcn_idx = ctx.iadd(&last_row, &c_next);
                        let d_lcn = ctx.ld_tex_f32(gm, self.bufs.dist, &lcn_idx);
                        let cl_idx = ctx.iadd(&c_row, &last);
                        let d_cl = ctx.ld_tex_f32(gm, self.bufs.dist, &cl_idx);
                        let fcn_idx = ctx.iadd(&first_row, &c_next);
                        let d_fcn = ctx.ld_tex_f32(gm, self.bufs.dist, &fcn_idx);

                        // fwd / rev / cost, mirroring the CPU expressions
                        // term for term.
                        let fwd_sum = ctx.fadd(&d_cf, &d_lcn);
                        let fwd = ctx.fsub(&fwd_sum, &d_base);
                        let rev_sum = ctx.fadd(&d_cl, &d_fcn);
                        let rev = ctx.fsub(&rev_sum, &d_base);
                        let take_fwd = ctx.fle(&fwd, &rev);
                        let cost = ctx.select_f32(&take_fwd, &fwd, &rev);
                        let imp = ctx.fsub(&removal, &cost);
                        let improving = ctx.fgt(&imp, &zero_f);

                        let key = ctx.iadd(&key_p, &k_reg);
                        let lower = ctx.ult(&key, &best_key);
                        let valid = rem_ok.and(&usable).and(&improving).and(&lower);
                        let nk = ctx.select_u32(&valid, &key, &best_key);
                        ctx.assign_u32(&mut best_key, &nk);
                        let np = ctx.select_u32(&valid, &p, &best_p);
                        ctx.assign_u32(&mut best_p, &np);
                        let ns = ctx.select_u32(&valid, &s_reg, &best_seg);
                        ctx.assign_u32(&mut best_seg, &ns);
                        let nr = ctx.select_u32(&valid, &k_reg, &best_rank);
                        ctx.assign_u32(&mut best_rank, &nr);
                    }
                });
            }
        });

        let entry = ant * per_ant + blk;
        block_reduce_min_key(
            ctx,
            gm,
            &best_key,
            &best_p,
            &best_seg,
            &best_rank,
            |ctx, gm, k, p, s, r| {
                let eidx = ctx.splat_u32(entry);
                ctx.st_global_u32(gm, self.bufs.block_key, &eidx, k);
                ctx.st_global_u32(gm, self.bufs.block_p, &eidx, p);
                ctx.st_global_u32(gm, self.bufs.block_seg, &eidx, s);
                ctx.st_global_u32(gm, self.bufs.block_rank, &eidx, r);
            },
        );
    }
}

/// Fold each windowed ant's per-block minima into its chosen move — one
/// block per ant.
pub struct OrOptSelectKernel {
    /// Family buffers.
    pub bufs: OrOptDev,
    /// First ant of the window.
    pub first_ant: u32,
}

impl OrOptSelectKernel {
    /// One block per windowed ant; threads stride over the entries.
    pub fn config(&self, num_ants: u32) -> LaunchConfig {
        LaunchConfig::new(num_ants, LS_BLOCK).regs(18).shared(4 * LS_BLOCK * 4)
    }
}

impl Kernel for OrOptSelectKernel {
    fn name(&self) -> &'static str {
        "or_opt_select"
    }

    fn run_block(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem) {
        let entries = self.bufs.pgrid();
        let ant = self.first_ant + ctx.block_idx;
        let ebase = ctx.splat_u32(ant * entries);
        let lane = ctx.thread_idx();
        let e_reg = ctx.splat_u32(entries);
        let step = ctx.splat_u32(LS_BLOCK);
        let max_u = ctx.splat_u32(u32::MAX);
        let mut fold_k = max_u.clone();
        let mut fold_p = ctx.splat_u32(0);
        let mut fold_s = ctx.splat_u32(1);
        let mut fold_r = ctx.splat_u32(0);
        let mut idx = lane.clone();
        for _ in 0..entries.div_ceil(LS_BLOCK) {
            let in_range = ctx.ult(&idx, &e_reg);
            ctx.branch(&in_range);
            ctx.with_mask(gm, &in_range, |ctx, gm| {
                let g_idx = ctx.iadd(&ebase, &idx);
                let k2 = ctx.ld_global_u32(gm, self.bufs.block_key, &g_idx);
                let p2 = ctx.ld_global_u32(gm, self.bufs.block_p, &g_idx);
                let s2 = ctx.ld_global_u32(gm, self.bufs.block_seg, &g_idx);
                let r2 = ctx.ld_global_u32(gm, self.bufs.block_rank, &g_idx);
                let better = ctx.ult(&k2, &fold_k);
                let nk = ctx.select_u32(&better, &k2, &fold_k);
                ctx.assign_u32(&mut fold_k, &nk);
                let np = ctx.select_u32(&better, &p2, &fold_p);
                ctx.assign_u32(&mut fold_p, &np);
                let ns = ctx.select_u32(&better, &s2, &fold_s);
                ctx.assign_u32(&mut fold_s, &ns);
                let nr = ctx.select_u32(&better, &r2, &fold_r);
                ctx.assign_u32(&mut fold_r, &nr);
            });
            idx = ctx.iadd(&idx, &step);
        }
        block_reduce_min_key(ctx, gm, &fold_k, &fold_p, &fold_s, &fold_r, |ctx, gm, k, p, s, r| {
            let aidx = ctx.splat_u32(ant);
            ctx.st_global_u32(gm, self.bufs.chosen_key, &aidx, k);
            ctx.st_global_u32(gm, self.bufs.chosen_p, &aidx, p);
            ctx.st_global_u32(gm, self.bufs.chosen_seg, &aidx, s);
            ctx.st_global_u32(gm, self.bufs.chosen_rank, &aidx, r);
        });
    }
}

/// Apply each windowed ant's chosen relocation — one block per ant.
/// Phase 1 writes the spliced order into the ant's scratch row (the
/// closed form of the CPU `splice_segment` rebuild), phase 2 copies it
/// back after a block-wide sync; lane 0 settles the device length. An
/// ant with no chosen move (key = MAX) is an exact no-op.
pub struct OrOptApplyKernel {
    /// Family buffers.
    pub bufs: OrOptDev,
    /// First ant of the window.
    pub first_ant: u32,
}

impl OrOptApplyKernel {
    /// One block per windowed ant; threads stride over the order cells.
    pub fn config(&self, num_ants: u32) -> LaunchConfig {
        LaunchConfig::new(num_ants, LS_BLOCK).regs(28)
    }
}

impl Kernel for OrOptApplyKernel {
    fn name(&self) -> &'static str {
        "or_opt_apply"
    }

    fn run_block(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem) {
        let n = self.bufs.n;
        let nn = self.bufs.nn;
        let ant = self.first_ant + ctx.block_idx;
        let base = ant * self.bufs.stride;
        let prow = ant * n;
        let zero_u = ctx.splat_u32(0);
        let one_u = ctx.splat_u32(1);
        let n_reg = ctx.splat_u32(n);
        let nn_reg = ctx.splat_u32(nn);
        let base_reg = ctx.splat_u32(base);
        let prow_reg = ctx.splat_u32(prow);
        let ant_reg = ctx.splat_u32(ant);
        let max_u = ctx.splat_u32(u32::MAX);

        // The ant's chosen move (uniform broadcast loads). A no-move ant
        // holds the fold defaults (p = 0, seg = 1, rank = 0), so every
        // derived index below stays in range and the `active` mask
        // neutralises all writes.
        let key = ctx.ld_global_u32(gm, self.bufs.chosen_key, &ant_reg);
        let active = ctx.ult(&key, &max_u);
        let p = ctx.ld_global_u32(gm, self.bufs.chosen_p, &ant_reg);
        let seg = ctx.ld_global_u32(gm, self.bufs.chosen_seg, &ant_reg);
        let rank = ctx.ld_global_u32(gm, self.bufs.chosen_rank, &ant_reg);

        // Re-derive the endpoints and the reversed flag with the same
        // f32 expressions the propose kernel used — exact, so the flag
        // matches the CPU's `fwd <= rev` decision.
        let first_g = ctx.iadd(&base_reg, &p);
        let first = ctx.ld_global_u32(gm, self.bufs.tours, &first_g);
        let sm1 = ctx.isub(&seg, &one_u);
        let last_pos = ctx.iadd(&p, &sm1);
        let last_g = ctx.iadd(&base_reg, &last_pos);
        let last = ctx.ld_global_u32(gm, self.bufs.tours, &last_g);
        let pn = ctx.iadd(&p, &n_reg);
        let pm1 = ctx.isub(&pn, &one_u);
        let pm1_over = ctx.ule(&n_reg, &pm1);
        let pm1_w = ctx.isub(&pm1, &n_reg);
        let prev_pos = ctx.select_u32(&pm1_over, &pm1_w, &pm1);
        let prev_g = ctx.iadd(&base_reg, &prev_pos);
        let prev = ctx.ld_global_u32(gm, self.bufs.tours, &prev_g);
        let next_raw = ctx.iadd(&p, &seg);
        let next_over = ctx.ule(&n_reg, &next_raw);
        let next_w = ctx.isub(&next_raw, &n_reg);
        let next_pos = ctx.select_u32(&next_over, &next_w, &next_raw);
        let next_g = ctx.iadd(&base_reg, &next_pos);
        let next = ctx.ld_global_u32(gm, self.bufs.tours, &next_g);

        let first_nn = ctx.imul(&first, &nn_reg);
        let l_idx = ctx.iadd(&first_nn, &rank);
        let c = ctx.ld_global_u32(gm, self.bufs.nn_list, &l_idx);
        let cp_idx = ctx.iadd(&prow_reg, &c);
        let cp = ctx.ld_global_u32(gm, self.bufs.pos, &cp_idx);
        let cp1 = ctx.iadd(&cp, &one_u);
        let cp1_over = ctx.ule(&n_reg, &cp1);
        let cp1_w = ctx.isub(&cp1, &n_reg);
        let cn_pos = ctx.select_u32(&cp1_over, &cp1_w, &cp1);
        let cn_g = ctx.iadd(&base_reg, &cn_pos);
        let c_next = ctx.ld_global_u32(gm, self.bufs.tours, &cn_g);

        let prev_row = ctx.imul(&prev, &n_reg);
        let pf_idx = ctx.iadd(&prev_row, &first);
        let d_pf = ctx.ld_tex_f32(gm, self.bufs.dist, &pf_idx);
        let last_row = ctx.imul(&last, &n_reg);
        let ln_idx = ctx.iadd(&last_row, &next);
        let d_ln = ctx.ld_tex_f32(gm, self.bufs.dist, &ln_idx);
        let pn_idx = ctx.iadd(&prev_row, &next);
        let d_pn = ctx.ld_tex_f32(gm, self.bufs.dist, &pn_idx);
        let rem_sum = ctx.fadd(&d_pf, &d_ln);
        let removal = ctx.fsub(&rem_sum, &d_pn);

        let c_row = ctx.imul(&c, &n_reg);
        let ccn_idx = ctx.iadd(&c_row, &c_next);
        let d_base = ctx.ld_tex_f32(gm, self.bufs.dist, &ccn_idx);
        let cf_idx = ctx.iadd(&c_row, &first);
        let d_cf = ctx.ld_tex_f32(gm, self.bufs.dist, &cf_idx);
        let first_row = ctx.imul(&first, &n_reg);
        let lcn_idx = ctx.iadd(&last_row, &c_next);
        let d_lcn = ctx.ld_tex_f32(gm, self.bufs.dist, &lcn_idx);
        let cl_idx = ctx.iadd(&c_row, &last);
        let d_cl = ctx.ld_tex_f32(gm, self.bufs.dist, &cl_idx);
        let fcn_idx = ctx.iadd(&first_row, &c_next);
        let d_fcn = ctx.ld_tex_f32(gm, self.bufs.dist, &fcn_idx);
        let fwd_sum = ctx.fadd(&d_cf, &d_lcn);
        let fwd = ctx.fsub(&fwd_sum, &d_base);
        let rev_sum = ctx.fadd(&d_cl, &d_fcn);
        let rev = ctx.fsub(&rev_sum, &d_base);
        let take_fwd = ctx.fle(&fwd, &rev);
        let cost = ctx.select_f32(&take_fwd, &fwd, &rev);
        let gain = ctx.fsub(&removal, &cost);

        // ci: position of c within the remaining cycle seg[j] =
        // old[(p + seg + j) mod n]  →  ci = (cp + n - p - seg) mod n.
        let cpn = ctx.iadd(&cp, &n_reg);
        let ci_raw = ctx.isub(&cpn, &next_raw); // cp + n - (p + seg)
        let ci_over = ctx.ule(&n_reg, &ci_raw);
        let ci_w = ctx.isub(&ci_raw, &n_reg);
        let ci = ctx.select_u32(&ci_over, &ci_w, &ci_raw);
        let ci_seg = ctx.iadd(&ci, &seg);

        // Phase 1: build the spliced order into the scratch row.
        //   i <= ci            → old[(p + seg + i) mod n]
        //   ci < i <= ci + seg → segment cell (reversed or forward)
        //   i > ci + seg       → old[(p + i) mod n]
        let mut i = ctx.thread_idx();
        let step = ctx.splat_u32(LS_BLOCK);
        ctx.loop_while(gm, |ctx, gm| {
            let cont = ctx.ult(&i, &n_reg).and(&active);
            ctx.with_mask(gm, &cont, |ctx, gm| {
                let case1 = ctx.ule(&i, &ci);
                let case12 = ctx.ule(&i, &ci_seg);
                // Source index, case 1: (p + seg + i) mod n.
                let i1_raw = ctx.iadd(&next_raw, &i); // p + seg + i < 2n
                let i1_over = ctx.ule(&n_reg, &i1_raw);
                let i1_w = ctx.isub(&i1_raw, &n_reg);
                let i1 = ctx.select_u32(&i1_over, &i1_w, &i1_raw);
                // Case 2: s = i - ci - 1 (clamped for other lanes), then
                // p + s forward or p + seg - 1 - s reversed.
                let s_raw = ctx.isub(&i, &ci);
                let s_m1 = ctx.isub(&s_raw, &one_u);
                let in2 = case12.and(&case1.not());
                let s_eff = ctx.select_u32(&in2, &s_m1, &zero_u);
                let i2f = ctx.iadd(&p, &s_eff);
                let last_pos2 = ctx.iadd(&p, &sm1);
                let i2r = ctx.isub(&last_pos2, &s_eff);
                let i2 = ctx.select_u32(&take_fwd, &i2f, &i2r);
                // Case 3: (p + i) mod n.
                let i3_raw = ctx.iadd(&p, &i);
                let i3_over = ctx.ule(&n_reg, &i3_raw);
                let i3_w = ctx.isub(&i3_raw, &n_reg);
                let i3 = ctx.select_u32(&i3_over, &i3_w, &i3_raw);
                let src23 = ctx.select_u32(&case12, &i2, &i3);
                let src = ctx.select_u32(&case1, &i1, &src23);
                let src_g = ctx.iadd(&base_reg, &src);
                let city = ctx.ld_global_u32(gm, self.bufs.tours, &src_g);
                let dst = ctx.iadd(&prow_reg, &i);
                ctx.st_global_u32(gm, self.bufs.tmp, &dst, &city);
            });
            i = ctx.iadd(&i, &step);
            cont
        });
        ctx.sync_threads();

        // Phase 2: copy the rebuilt order back into the tour row.
        let mut j = ctx.thread_idx();
        ctx.loop_while(gm, |ctx, gm| {
            let cont = ctx.ult(&j, &n_reg).and(&active);
            ctx.with_mask(gm, &cont, |ctx, gm| {
                let src = ctx.iadd(&prow_reg, &j);
                let city = ctx.ld_global_u32(gm, self.bufs.tmp, &src);
                let dst = ctx.iadd(&base_reg, &j);
                ctx.st_global_u32(gm, self.bufs.tours, &dst, &city);
            });
            j = ctx.iadd(&j, &step);
            cont
        });

        // Lane 0 of an active ant: settle the device-side length.
        let lane0 = ctx.lane_mask(0).and(&active);
        ctx.if_then(gm, &lane0, |ctx, gm| {
            let len = ctx.ld_global_f32(gm, self.bufs.lengths, &ant_reg);
            let new_len = ctx.fsub(&len, &gain);
            ctx.st_global_f32(gm, self.bufs.lengths, &ant_reg, &new_len);
        });
    }
}

/// Outcome of one device Or-opt pass over a window of ant rows.
#[derive(Debug, Clone)]
pub struct OrOptRun {
    /// Proposal rounds executed (the final round finds no move).
    pub rounds: u32,
    /// Relocations applied (summed over the window).
    pub moves: u32,
    /// Total modeled milliseconds across every launch of the pass.
    pub ms: f64,
    /// Merged counters of every launch.
    pub stats: KernelStats,
}

/// Run the `or_opt` kernel family over the window `first_ant ..
/// first_ant + num_ants` of tour rows until no windowed ant has an
/// improving relocation. Each round is one launch per phase regardless
/// of the window size — `O(rounds)` launches — and the host reads back
/// `num_ants` key words per round. Results are bit-identical to the CPU
/// pass per ant, at any host `threads` count.
pub fn run_or_opt(
    dev: &DeviceSpec,
    gm: &mut GlobalMem,
    bufs: OrOptDev,
    first_ant: u32,
    num_ants: u32,
    threads: usize,
) -> Result<OrOptRun, SimtError> {
    let mut out = OrOptRun {
        rounds: 0,
        moves: 0,
        ms: 0.0,
        stats: KernelStats::for_sms(dev.sm_count as usize),
    };
    // The CPU pass is a no-op below 5 cities (no segment both removable
    // and reinsertable); mirror that without a launch.
    if bufs.n < 5 || num_ants == 0 {
        return Ok(out);
    }
    loop {
        let pk = OrOptPosKernel { bufs, first_ant, num_ants };
        let r = launch_threads(dev, &pk.config(), &pk, gm, SimMode::Full, threads)?;
        out.ms += r.time.total_ms;
        out.stats.merge(&r.stats);
        let prk = OrOptProposeKernel { bufs, first_ant, num_ants };
        let r = launch_threads(dev, &prk.config(), &prk, gm, SimMode::Full, threads)?;
        out.ms += r.time.total_ms;
        out.stats.merge(&r.stats);
        let sk = OrOptSelectKernel { bufs, first_ant };
        let r = launch_threads(dev, &sk.config(num_ants), &sk, gm, SimMode::Full, threads)?;
        out.ms += r.time.total_ms;
        out.stats.merge(&r.stats);
        out.rounds += 1;
        let keys = &gm.u32(bufs.chosen_key)[first_ant as usize..(first_ant + num_ants) as usize];
        let improving = keys.iter().filter(|&&k| k != u32::MAX).count() as u32;
        if improving == 0 {
            break;
        }
        let ak = OrOptApplyKernel { bufs, first_ant };
        let r = launch_threads(dev, &ak.config(num_ants), &ak, gm, SimMode::Full, threads)?;
        out.ms += r.time.total_ms;
        out.stats.merge(&r.stats);
        out.moves += improving;
    }
    Ok(out)
}

/// Modeled milliseconds of one windowed proposal round (pos + propose +
/// select) of the `or_opt` family — the cost-model probe. Pure timing:
/// no move is applied, tours are untouched (the pos kernel only
/// refreshes its own scratch and the θ-padding).
pub fn probe_or_round_ms(
    dev: &DeviceSpec,
    gm: &mut GlobalMem,
    bufs: OrOptDev,
    first_ant: u32,
    num_ants: u32,
    mode: SimMode,
) -> Result<f64, SimtError> {
    if bufs.n < 5 || num_ants == 0 {
        return Ok(0.0);
    }
    let mut ms = 0.0;
    let pk = OrOptPosKernel { bufs, first_ant, num_ants };
    ms += launch_threads(dev, &pk.config(), &pk, gm, mode, 1)?.time.total_ms;
    let prk = OrOptProposeKernel { bufs, first_ant, num_ants };
    ms += launch_threads(dev, &prk.config(), &prk, gm, mode, 1)?.time.total_ms;
    let sk = OrOptSelectKernel { bufs, first_ant };
    ms += launch_threads(dev, &sk.config(num_ants), &sk, gm, mode, 1)?.time.total_ms;
    Ok(ms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{or_opt, LsScratch};
    use aco_tsp::{uniform_random, NearestNeighborLists, Tour, TspInstance};
    use rand::SeedableRng;

    fn device_setup(
        inst: &TspInstance,
        nn: &NearestNeighborLists,
        tours: &[Tour],
        stride: u32,
    ) -> (GlobalMem, OrOptDev) {
        let n = inst.n();
        let mut gm = GlobalMem::new();
        let dist = gm.alloc_f32(n * n);
        let host: Vec<f32> = inst.matrix().as_flat().iter().map(|&d| d as f32).collect();
        gm.write_f32(dist, &host);
        let tbuf = gm.alloc_u32(tours.len() * stride as usize);
        {
            let cells = gm.u32_mut(tbuf);
            for (a, t) in tours.iter().enumerate() {
                let row = &mut cells[a * stride as usize..(a + 1) * stride as usize];
                row[..n].copy_from_slice(t.order());
                for c in row[n..].iter_mut() {
                    *c = t.order()[0];
                }
            }
        }
        let lengths = gm.alloc_f32(tours.len());
        let lens: Vec<f32> = tours.iter().map(|t| t.length(inst.matrix()) as f32).collect();
        gm.write_f32(lengths, &lens);
        let nn_buf = gm.alloc_u32(n * nn.depth());
        gm.write_u32(nn_buf, nn.as_flat());
        let bufs = OrOptDev::allocate(
            &mut gm,
            n as u32,
            tours.len() as u32,
            nn.depth() as u32,
            stride,
            dist,
            tbuf,
            lengths,
            nn_buf,
        );
        (gm, bufs)
    }

    fn random_tours(n: usize, m: usize, seed: u64) -> Vec<Tour> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..m).map(|_| Tour::random(n, &mut rng)).collect()
    }

    #[test]
    fn kernel_family_matches_cpu_or_opt_exactly() {
        for (n, seed, depth, m) in
            [(32usize, 7u64, 8usize, 4usize), (61, 21, 12, 5), (96, 3, 16, 3)]
        {
            let inst = uniform_random("oropt-gpu", n, 1000.0, seed);
            let nn = NearestNeighborLists::build(inst.matrix(), depth).unwrap();
            let tours = random_tours(n, m, seed ^ 0x5A);
            let stride = ((n + 1) as u32).next_multiple_of(256);
            let (mut gm, bufs) = device_setup(&inst, &nn, &tours, stride);

            let run =
                run_or_opt(&DeviceSpec::tesla_m2050(), &mut gm, bufs, 0, m as u32, 1).unwrap();

            let mut total_moves = 0usize;
            for (a, t) in tours.iter().enumerate() {
                let mut host = t.clone();
                let mut scratch = LsScratch::new();
                total_moves += or_opt(&mut host, inst.matrix(), &nn, &mut scratch);
                let row = &gm.u32(bufs.tours)[a * stride as usize..a * stride as usize + n];
                assert_eq!(
                    row,
                    host.order(),
                    "n={n} seed={seed} ant={a}: device and host tours must be identical"
                );
                let exact = host.length(inst.matrix()) as f32;
                let dev_len = gm.f32(bufs.lengths)[a];
                assert!(
                    (dev_len - exact).abs() <= exact * 1e-5,
                    "ant {a}: device length {dev_len} vs exact {exact}"
                );
            }
            assert_eq!(run.moves as usize, total_moves, "n={n}: same total move count");
            assert!(run.moves > 0, "random tours on {n} cities must admit relocations");
        }
    }

    #[test]
    fn windowed_pass_improves_only_the_window() {
        let n = 48usize;
        let inst = uniform_random("oropt-win", n, 900.0, 5);
        let nn = NearestNeighborLists::build(inst.matrix(), 10).unwrap();
        let tours = random_tours(n, 3, 9);
        let stride = ((n + 1) as u32).next_multiple_of(256);
        let (mut gm, bufs) = device_setup(&inst, &nn, &tours, stride);
        let run = run_or_opt(&DeviceSpec::tesla_m2050(), &mut gm, bufs, 1, 1, 1).unwrap();
        assert!(run.moves > 0);
        // Ant 1 matches the CPU pass; ants 0 and 2 are untouched.
        let mut host = tours[1].clone();
        let mut scratch = LsScratch::new();
        or_opt(&mut host, inst.matrix(), &nn, &mut scratch);
        let row1 = &gm.u32(bufs.tours)[stride as usize..stride as usize + n];
        assert_eq!(row1, host.order());
        for a in [0usize, 2] {
            let row = &gm.u32(bufs.tours)[a * stride as usize..a * stride as usize + n];
            assert_eq!(row, tours[a].order(), "ant {a} outside the window must not move");
        }
    }

    #[test]
    fn kernel_family_is_bit_identical_at_any_exec_thread_count() {
        let n = 48usize;
        let m = 4usize;
        let inst = uniform_random("oropt-thr", n, 900.0, 5);
        let nn = NearestNeighborLists::build(inst.matrix(), 10).unwrap();
        let tours = random_tours(n, m, 9);
        let stride = ((n + 1) as u32).next_multiple_of(256);
        let dev = DeviceSpec::tesla_c1060();

        let (mut gm1, b1) = device_setup(&inst, &nn, &tours, stride);
        let serial = run_or_opt(&dev, &mut gm1, b1, 0, m as u32, 1).unwrap();
        for threads in [2, 4, 16] {
            let (mut gm2, b2) = device_setup(&inst, &nn, &tours, stride);
            let parallel = run_or_opt(&dev, &mut gm2, b2, 0, m as u32, threads).unwrap();
            assert_eq!(serial.rounds, parallel.rounds, "{threads} threads");
            assert_eq!(serial.moves, parallel.moves, "{threads} threads");
            assert_eq!(serial.stats, parallel.stats, "{threads} threads: counters");
            assert_eq!(serial.ms.to_bits(), parallel.ms.to_bits(), "{threads} threads: time");
            assert_eq!(gm1.u32(b1.tours), gm2.u32(b2.tours), "{threads} threads: memory");
        }
    }

    #[test]
    fn local_optimum_is_a_single_round_noop() {
        let n = 40usize;
        let inst = uniform_random("oropt-idem", n, 800.0, 2);
        let nn = NearestNeighborLists::build(inst.matrix(), 10).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut tour = Tour::random(n, &mut rng);
        let mut scratch = LsScratch::new();
        or_opt(&mut tour, inst.matrix(), &nn, &mut scratch);
        let stride = ((n + 1) as u32).next_multiple_of(256);
        let (mut gm, bufs) = device_setup(&inst, &nn, std::slice::from_ref(&tour), stride);
        let run = run_or_opt(&DeviceSpec::tesla_m2050(), &mut gm, bufs, 0, 1, 1).unwrap();
        assert_eq!(run.moves, 0, "a host Or-opt optimum admits no device move");
        assert_eq!(run.rounds, 1);
        assert_eq!(gm.u32(bufs.tours)[..n], *tour.order());
    }

    #[test]
    fn tiny_instances_are_noops_without_launches() {
        let inst = uniform_random("oropt-tiny", 4, 100.0, 1);
        let nn = NearestNeighborLists::build(inst.matrix(), 3).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let tour = Tour::random(4, &mut rng);
        let stride = 256u32;
        let (mut gm, bufs) = device_setup(&inst, &nn, std::slice::from_ref(&tour), stride);
        let run = run_or_opt(&DeviceSpec::tesla_m2050(), &mut gm, bufs, 0, 1, 1).unwrap();
        assert_eq!((run.rounds, run.moves), (0, 0));
        assert_eq!(run.ms, 0.0);
    }
}
