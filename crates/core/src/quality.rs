//! Solution-quality experiments.
//!
//! The paper states: "The quality of the actual solutions obtained is not
//! deeply studied, although the results are similar to those obtained by
//! the sequential code for all our implementations." This module makes
//! that claim testable: run the CPU reference and a GPU strategy over
//! multiple seeds and compare best-tour statistics.

use aco_simt::DeviceSpec;
use aco_tsp::TspInstance;

use crate::cpu::{AntSystem, TourPolicy};
use crate::gpu::{GpuAntSystem, PheromoneStrategy, TourStrategy};
use crate::params::AcoParams;

/// Summary statistics of a multi-seed run.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityStats {
    /// Best length per seed.
    pub bests: Vec<u64>,
    /// Mean of `bests`.
    pub mean: f64,
    /// Sample standard deviation of `bests`.
    pub stddev: f64,
    /// Minimum over seeds.
    pub min: u64,
}

impl QualityStats {
    fn from_bests(bests: Vec<u64>) -> Self {
        assert!(!bests.is_empty());
        let mean = bests.iter().map(|&b| b as f64).sum::<f64>() / bests.len() as f64;
        let var = if bests.len() > 1 {
            bests.iter().map(|&b| (b as f64 - mean).powi(2)).sum::<f64>() / (bests.len() - 1) as f64
        } else {
            0.0
        };
        let min = *bests.iter().min().expect("non-empty");
        QualityStats { bests, mean, stddev: var.sqrt(), min }
    }
}

/// Run the sequential Ant System over `seeds` seeds.
pub fn cpu_quality(
    inst: &TspInstance,
    params: &AcoParams,
    policy: TourPolicy,
    iterations: usize,
    seeds: &[u64],
) -> QualityStats {
    let bests = seeds
        .iter()
        .map(|&s| {
            let mut aco = AntSystem::new(inst, params.clone().seed(s));
            aco.run(iterations, policy)
        })
        .collect();
    QualityStats::from_bests(bests)
}

/// Run a GPU strategy over `seeds` seeds (full-fidelity simulation).
pub fn gpu_quality(
    inst: &TspInstance,
    params: &AcoParams,
    dev: &DeviceSpec,
    tour: TourStrategy,
    pheromone: PheromoneStrategy,
    iterations: usize,
    seeds: &[u64],
) -> QualityStats {
    let bests = seeds
        .iter()
        .map(|&s| {
            let mut sys =
                GpuAntSystem::new(inst, params.clone().seed(s), dev.clone(), tour, pheromone);
            sys.run(iterations).expect("small instances always launch")
        })
        .collect();
    QualityStats::from_bests(bests)
}

/// Relative gap between two means (b vs a), in percent.
pub fn gap_percent(a: f64, b: f64) -> f64 {
    (b - a) / a * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use aco_tsp::generator::uniform_random;

    #[test]
    fn stats_are_computed_correctly() {
        let s = QualityStats::from_bests(vec![10, 12, 14]);
        assert_eq!(s.mean, 12.0);
        assert_eq!(s.min, 10);
        assert!((s.stddev - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gpu_quality_is_similar_to_cpu_quality() {
        // The paper's "results are similar" claim, on a small instance
        // with a handful of seeds (kept tight so the suite stays fast).
        let inst = uniform_random("q", 40, 800.0, 3);
        let params = AcoParams::default().nn(10);
        let seeds = [1, 2, 3];
        let cpu = cpu_quality(&inst, &params, TourPolicy::NearestNeighborList, 10, &seeds);
        let gpu = gpu_quality(
            &inst,
            &params,
            &DeviceSpec::tesla_m2050(),
            TourStrategy::NNList,
            PheromoneStrategy::AtomicShared,
            10,
            &seeds,
        );
        let gap = gap_percent(cpu.mean, gpu.mean).abs();
        assert!(gap < 15.0, "CPU {} vs GPU {} ({gap:.1}% gap)", cpu.mean, gpu.mean);
    }

    #[test]
    fn gap_percent_signs() {
        assert!(gap_percent(100.0, 110.0) > 0.0);
        assert!(gap_percent(100.0, 90.0) < 0.0);
        assert_eq!(gap_percent(100.0, 100.0), 0.0);
    }
}
