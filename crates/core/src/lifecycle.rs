//! Job-lifecycle plumbing shared by every colony: cancellation tokens,
//! deadlines, and iteration-best observation.
//!
//! The paper's colonies are fire-and-forget single solves; a serving
//! engine needs mid-flight observability. [`SolveCtx`] carries the three
//! lifecycle channels a long-running solve must honour:
//!
//! * a **cancellation token** ([`CancelToken`]) checked at every
//!   iteration boundary, so a `cancel()` from another thread stops the
//!   colony within one iteration;
//! * an optional **deadline** ([`std::time::Instant`]) checked at the
//!   same boundary;
//! * an **iteration observer** — a sink that receives one
//!   [`IterationEvent`] per completed iteration (iteration-best and
//!   best-so-far lengths), the raw material for progress streams.
//!
//! Every colony in this crate exposes a ctx-driven loop (`run_ctx`) built
//! on [`drive`] / [`try_drive`], so the check-emit protocol is identical
//! across the sequential/parallel CPU Ant System, ACS, MMAS, and the GPU
//! system/ACS paths. Determinism: for a run that is never stopped, the
//! emitted event sequence is a pure function of the colony's inputs —
//! wall-clock only enters through the *optional* deadline.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Shared cancellation flag. Clones observe the same flag; `cancel()` is
/// a release store, so a colony's next iteration-boundary check
/// (`is_cancelled`, an acquire load) sees it promptly.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has [`CancelToken::cancel`] been called (on this token or any
    /// clone)?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Why a ctx-driven run stopped before completing all its iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The [`CancelToken`] fired.
    Cancelled,
    /// The deadline passed.
    DeadlineExpired,
}

/// One completed colony iteration, as seen by the observer sink.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationEvent {
    /// 0-based iteration index within this run.
    pub iteration: u64,
    /// Best tour length found in this iteration.
    pub iter_best: u64,
    /// Best tour length found so far (≤ `iter_best`).
    pub best_so_far: u64,
    /// Pool id of the simulated device the iteration ran on, for runs
    /// scheduled onto a device pool. Colonies themselves emit `None`
    /// (they do not know about pools); a pool-aware scheduler stamps the
    /// id in its observer before fanning the event out.
    pub device: Option<u32>,
    /// Search-dynamics statistics for this iteration. `None` unless the
    /// context asked for dynamics ([`SolveCtx::with_dynamics`]) *and*
    /// the colony computes them. Telemetry only — two runs differing
    /// solely in this field did identical solve work.
    pub stats: Option<aco_obs::IterationStats>,
}

/// The observer sink: called once per completed iteration, on the thread
/// running the colony. Implementations must be cheap and non-blocking —
/// they sit inside the solve hot loop.
pub type IterationObserver = dyn Fn(IterationEvent) + Send + Sync;

/// The context a ctx-driven solve runs under. Construct with the
/// builders; an empty `SolveCtx::new()` never stops and observes nothing,
/// which makes it a drop-in for the old fire-and-forget loops.
#[derive(Default)]
pub struct SolveCtx {
    cancel: CancelToken,
    deadline: Option<Instant>,
    observer: Option<Box<IterationObserver>>,
    trace: Option<Arc<aco_obs::JobTrace>>,
    dynamics: Option<aco_obs::DynamicsConfig>,
}

impl std::fmt::Debug for SolveCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveCtx")
            .field("cancelled", &self.cancel.is_cancelled())
            .field("deadline", &self.deadline)
            .field("observed", &self.observer.is_some())
            .field("traced", &self.trace.is_some())
            .field("dynamics", &self.dynamics.is_some())
            .finish()
    }
}

impl SolveCtx {
    /// A context that never stops and observes nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: cancel this run when `token` fires.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Builder: stop the run at `deadline` (checked at iteration
    /// boundaries, like cancellation).
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Builder: send one [`IterationEvent`] per completed iteration to
    /// `observer`.
    pub fn with_observer(
        mut self,
        observer: impl Fn(IterationEvent) + Send + Sync + 'static,
    ) -> Self {
        self.observer = Some(Box::new(observer));
        self
    }

    /// Builder: record per-iteration phase spans (and, on the GPU paths,
    /// kernel-family profiles) into `trace`. Write-only telemetry: a
    /// traced run produces bit-identical results to an untraced one.
    pub fn with_trace(mut self, trace: Arc<aco_obs::JobTrace>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Builder: compute per-iteration search-dynamics statistics (tour
    /// length distribution, trail entropy, λ-branching, stagnation)
    /// under `config` and attach them to every emitted
    /// [`IterationEvent`]. Write-only telemetry — results are
    /// bit-identical with or without it.
    pub fn with_dynamics(mut self, config: aco_obs::DynamicsConfig) -> Self {
        self.dynamics = Some(config);
        self
    }

    /// The dynamics configuration, if this run should compute search
    /// statistics. Colonies consult this to skip the `O(n²)`
    /// entropy/branching scans when nobody asked.
    pub fn dynamics(&self) -> Option<&aco_obs::DynamicsConfig> {
        self.dynamics.as_ref()
    }

    /// The trace this run records spans into, if any. Colonies call
    /// `record_iteration` on it with their modeled per-phase times.
    pub fn trace(&self) -> Option<&Arc<aco_obs::JobTrace>> {
        self.trace.as_ref()
    }

    /// The cancellation token this context watches.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Should the run stop *now*? Cancellation outranks the deadline.
    pub fn stop_reason(&self) -> Option<StopReason> {
        if self.cancel.is_cancelled() {
            return Some(StopReason::Cancelled);
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => Some(StopReason::DeadlineExpired),
            _ => None,
        }
    }

    /// Deliver an event to the observer (no-op without one).
    pub fn emit(&self, event: IterationEvent) {
        if let Some(obs) = &self.observer {
            obs(event);
        }
    }
}

/// How a ctx-driven run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunOutcome {
    /// Iterations actually completed (≤ requested).
    pub iterations: usize,
    /// `None` if all requested iterations ran; otherwise why it stopped.
    pub stopped: Option<StopReason>,
}

impl RunOutcome {
    /// Did the run complete every requested iteration?
    pub fn completed(&self) -> bool {
        self.stopped.is_none()
    }
}

/// The shared check-emit loop every colony's `run_ctx` is built on:
/// before each iteration consult [`SolveCtx::stop_reason`]; after it,
/// emit the `(iter_best, best_so_far)` pair `step` returns.
pub fn drive(
    iterations: usize,
    ctx: &SolveCtx,
    mut step: impl FnMut(u64) -> (u64, u64),
) -> RunOutcome {
    drive_dynamics(iterations, ctx, |k| {
        let (iter_best, best_so_far) = step(k);
        (iter_best, best_so_far, None)
    })
}

/// [`drive`] for colonies that also measure search dynamics: `step`
/// returns `(iter_best, best_so_far, raw)` where `raw` carries the
/// iteration's tour-length distribution and trail statistics (`None`
/// when the context asked for no dynamics — colonies gate the `O(n²)`
/// scans on [`SolveCtx::dynamics`]). The driver owns the per-run
/// [`DynamicsTracker`](aco_obs::DynamicsTracker), so improvement deltas
/// and the stagnation detector behave identically across all six
/// colonies.
pub fn drive_dynamics(
    iterations: usize,
    ctx: &SolveCtx,
    mut step: impl FnMut(u64) -> (u64, u64, Option<aco_obs::RawDynamics>),
) -> RunOutcome {
    match try_drive_dynamics::<std::convert::Infallible>(iterations, ctx, |k| Ok(step(k))) {
        Ok(out) => out,
        Err(e) => match e {},
    }
}

/// [`drive`] for fallible steps (the simulated GPU paths, whose kernel
/// launches can reject). An `Err` aborts the loop without emitting.
pub fn try_drive<E>(
    iterations: usize,
    ctx: &SolveCtx,
    mut step: impl FnMut(u64) -> Result<(u64, u64), E>,
) -> Result<RunOutcome, E> {
    try_drive_dynamics(iterations, ctx, |k| {
        let (iter_best, best_so_far) = step(k)?;
        Ok((iter_best, best_so_far, None))
    })
}

/// [`drive_dynamics`] for fallible steps. An `Err` aborts the loop
/// without emitting.
pub fn try_drive_dynamics<E>(
    iterations: usize,
    ctx: &SolveCtx,
    mut step: impl FnMut(u64) -> Result<(u64, u64, Option<aco_obs::RawDynamics>), E>,
) -> Result<RunOutcome, E> {
    let mut tracker = ctx.dynamics.map(aco_obs::DynamicsTracker::new);
    for k in 0..iterations {
        if let Some(reason) = ctx.stop_reason() {
            return Ok(RunOutcome { iterations: k, stopped: Some(reason) });
        }
        let (iter_best, best_so_far, raw) = step(k as u64)?;
        let stats = match (&mut tracker, raw) {
            (Some(t), Some(raw)) => Some(t.observe(best_so_far, raw)),
            _ => None,
        };
        ctx.emit(IterationEvent {
            iteration: k as u64,
            iter_best,
            best_so_far,
            device: None,
            stats,
        });
    }
    Ok(RunOutcome { iterations, stopped: None })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn empty_ctx_runs_to_completion_and_emits_nothing() {
        let ctx = SolveCtx::new();
        let out = drive(5, &ctx, |k| (100 - k, 100 - k));
        assert_eq!(out, RunOutcome { iterations: 5, stopped: None });
        assert!(out.completed());
    }

    #[test]
    fn cancel_stops_at_the_next_iteration_boundary() {
        let token = CancelToken::new();
        let ctx = SolveCtx::new().with_cancel(token.clone());
        let cancel_at = 3u64;
        let out = drive(10, &ctx, |k| {
            if k + 1 == cancel_at {
                token.cancel();
            }
            (50, 50)
        });
        assert_eq!(out.iterations, cancel_at as usize);
        assert_eq!(out.stopped, Some(StopReason::Cancelled));
    }

    #[test]
    fn expired_deadline_stops_before_the_first_iteration() {
        let ctx = SolveCtx::new().with_deadline(Instant::now());
        let out = drive(4, &ctx, |_| unreachable!("deadline already passed"));
        assert_eq!(out.iterations, 0);
        assert_eq!(out.stopped, Some(StopReason::DeadlineExpired));
    }

    #[test]
    fn observer_sees_every_iteration_in_order() {
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        let ctx = SolveCtx::new().with_observer(move |ev| {
            assert_eq!(ev.iteration, seen2.load(Ordering::SeqCst));
            assert_eq!(ev.iter_best, ev.iteration + 10);
            seen2.fetch_add(1, Ordering::SeqCst);
        });
        let out = drive(6, &ctx, |k| (k + 10, k + 10));
        assert!(out.completed());
        assert_eq!(seen.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn dynamics_ctx_attaches_stats_to_events() {
        use aco_obs::{DynamicsConfig, RawDynamics};
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let ctx = SolveCtx::new()
            .with_dynamics(DynamicsConfig::default().window(2).entropy_floor(0.0))
            .with_observer(move |ev| seen2.lock().unwrap().push(ev));
        let out = drive_dynamics(4, &ctx, |k| {
            let best = 100 - k.min(1) * 10; // one improvement at k = 1, then flat
            let raw =
                RawDynamics { mean_len: best as f64 + 5.0, entropy: 0.9, ..Default::default() };
            (best, best, Some(raw))
        });
        assert!(out.completed());
        let evs = seen.lock().expect("events");
        assert_eq!(evs.len(), 4);
        let s1 = evs[1].stats.expect("stats attached");
        assert_eq!(s1.improvement, 10);
        assert_eq!(s1.stagnant_iterations, 0);
        let s3 = evs[3].stats.expect("stats attached");
        assert_eq!(s3.stagnant_iterations, 2);
        assert!(s3.stagnant, "2 flat iterations hit the window of 2");
        assert!((s3.mean_len - 95.0).abs() < 1e-12);
    }

    #[test]
    fn plain_drive_emits_no_stats() {
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let ctx = SolveCtx::new()
            .with_dynamics(aco_obs::DynamicsConfig::default())
            .with_observer(move |ev| seen2.lock().unwrap().push(ev));
        drive(2, &ctx, |_| (7, 7));
        assert!(seen.lock().expect("events").iter().all(|ev| ev.stats.is_none()));
    }

    #[test]
    fn try_drive_propagates_errors() {
        let ctx = SolveCtx::new();
        let r: Result<RunOutcome, &str> =
            try_drive(3, &ctx, |k| if k == 1 { Err("boom") } else { Ok((1, 1)) });
        assert_eq!(r, Err("boom"));
    }
}
