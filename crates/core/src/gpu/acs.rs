//! GPU Ant Colony System — the paper's named future work.
//!
//! "We will also implement other ACO algorithms, such as the Ant Colony
//! System, which can also be efficiently implemented on the GPU"
//! (Section VI). This module does exactly that, reusing the simulator
//! substrate:
//!
//! * **Tour kernel** (task-parallel, candidate lists): the pseudo-random
//!   proportional rule — with probability `q0` take the best candidate,
//!   otherwise roulette — plus ACS's *local pheromone update*
//!   (`tau = (1-xi) tau + xi tau0`) applied to every crossed edge as the
//!   ants move. Concurrent ants race on popular edges exactly as a real
//!   CUDA port would; the simulator resolves stores in lane order, and the
//!   rule's convex-combination form keeps any interleaving well-defined.
//! * **Global update kernel**: one thread per tour position of the
//!   best-so-far ant only (`tau = (1-rho) tau + rho/C_bs`), a tiny launch
//!   compared to the Ant System's full-matrix update.
//!
//! The heuristic weights live in a precomputed `eta^beta` table (the
//! Choice kernel with `alpha = 0`), since ACS multiplies raw `tau` in.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use aco_localsearch::{LocalSearch, LsScope, LsScratch, OrOptDev, TwoOptBatchDev, TwoOptDev};
use aco_simt::prelude::*;
use aco_simt::rng::PmRng;
use aco_simt::SimtError;
use aco_tsp::{Tour, TspInstance};

use super::buffers::ColonyBuffers;
use super::choice::ChoiceKernel;
use crate::cpu::acs::AcsParams;
use crate::params::AcoParams;

/// Per-iteration report: `(best_so_far, tour_ms, update_ms, ls_ms)`.
pub type AcsIterReport = (u64, f64, f64, f64);

/// ACS tour construction: pseudo-random proportional rule + local update.
pub struct AcsTourKernel {
    /// Device buffers; `choice` holds `eta^beta` (not `tau^a eta^b`).
    pub bufs: ColonyBuffers,
    /// Exploitation probability `q0`.
    pub q0: f32,
    /// Local evaporation `xi`.
    pub xi: f32,
    /// Initial pheromone `tau0 = 1/(n C_nn)`.
    pub tau0: f32,
    /// Colony seed.
    pub seed: u64,
    /// Iteration number.
    pub iteration: u64,
}

impl AcsTourKernel {
    /// Launch geometry: ACS colonies are small (10 ants classically), so
    /// one modest block usually covers the colony.
    pub fn config(&self) -> LaunchConfig {
        LaunchConfig::new(self.bufs.m.div_ceil(64), 64).regs(26)
    }

    /// `tau[idx] * eta_beta[idx]` for a candidate (2 loads + 1 mul).
    fn value(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem, idx: &Reg<u32>) -> Reg<f32> {
        let tau = ctx.ld_global_f32(gm, self.bufs.tau, idx);
        let eb = ctx.ld_global_f32(gm, self.bufs.choice, idx);
        ctx.fmul(&tau, &eb)
    }

    /// Best unvisited city over all cities (fallback path).
    fn argmax_unvisited(
        &self,
        ctx: &mut BlockCtx,
        gm: &mut GlobalMem,
        tid: &Reg<u32>,
        cur: &Reg<u32>,
    ) -> Reg<u32> {
        let n = self.bufs.n;
        let nreg = ctx.splat_u32(n);
        let one = ctx.splat_f32(1.0);
        let curn = ctx.imul(cur, &nreg);
        let row = ctx.imul(tid, &nreg);
        let mut best_v = ctx.splat_f32(-1.0);
        let mut best_j = ctx.splat_u32(0);
        for j in 0..n {
            let jr = ctx.splat_u32(j);
            let cidx = ctx.iadd(&curn, &jr);
            let v = self.value(ctx, gm, &cidx);
            let vidx = ctx.iadd(&row, &jr);
            let vis = ctx.ld_global_u32(gm, self.bufs.visited, &vidx);
            let visf = ctx.u2f(&vis);
            let unvis = ctx.fsub(&one, &visf);
            let vp1 = ctx.fadd(&v, &one);
            let score = ctx.fmul(&vp1, &unvis);
            let better = ctx.fgt(&score, &best_v);
            best_v = ctx.select_f32(&better, &score, &best_v);
            best_j = ctx.select_u32(&better, &jr, &best_j);
        }
        best_j
    }
}

impl Kernel for AcsTourKernel {
    fn name(&self) -> &'static str {
        "acs_tour"
    }

    fn run_block(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem) {
        let n = self.bufs.n;
        let nn = self.bufs.nn;
        let stride = self.bufs.stride;
        let tid = ctx.global_thread_idx();
        let m = ctx.splat_u32(self.bufs.m);
        let is_ant = ctx.ult(&tid, &m);

        ctx.if_then(gm, &is_ant, |ctx, gm| {
            let mut lcg = {
                let base = ctx.block_idx * ctx.block_dim;
                let seed = self.seed ^ self.iteration.wrapping_mul(0xA5A5_1234);
                ctx.reg_from_fn_u32(|lane| PmRng::thread_seed(seed, (base as usize + lane) as u64))
            };

            let nreg = ctx.splat_u32(n);
            let nnreg = ctx.splat_u32(nn);
            let one_u = ctx.splat_u32(1);
            let one_f = ctx.splat_f32(1.0);
            let zero_f = ctx.splat_f32(0.0);
            let q0 = ctx.splat_f32(self.q0);
            let xi = ctx.splat_f32(self.xi);
            let keep = ctx.splat_f32(1.0 - self.xi);
            let tau0_reg = ctx.splat_f32(self.tau0);
            let xtau0 = ctx.fmul(&xi, &tau0_reg);

            // Start city.
            let r0 = ctx.lcg_next_f32(&mut lcg);
            let nf = ctx.splat_f32(n as f32);
            let sf = ctx.fmul(&r0, &nf);
            let raw = ctx.f2u(&sf);
            let nm1 = ctx.splat_u32(n - 1);
            let start = ctx.imin(&raw, &nm1);
            let stride_reg = ctx.splat_u32(stride);
            let base = ctx.imul(&tid, &stride_reg);
            ctx.st_global_u32(gm, self.bufs.tours, &base, &start);
            let vrow = ctx.imul(&tid, &nreg);
            let vidx = ctx.iadd(&vrow, &start);
            ctx.st_global_u32(gm, self.bufs.visited, &vidx, &one_u);

            let mut cur = start.clone();
            let mut len = ctx.splat_f32(0.0);

            for step in 1..n {
                let curn = ctx.imul(&cur, &nreg);
                let curnn = ctx.imul(&cur, &nnreg);

                // Candidate values (tau * eta^beta, tabu-masked).
                let mut vals: Vec<Reg<f32>> = Vec::with_capacity(nn as usize);
                let mut cands: Vec<Reg<u32>> = Vec::with_capacity(nn as usize);
                let mut sum = ctx.splat_f32(0.0);
                for c in 0..nn {
                    let cr = ctx.splat_u32(c);
                    let lidx = ctx.iadd(&curnn, &cr);
                    let cand = ctx.ld_global_u32(gm, self.bufs.nn_list, &lidx);
                    let cidx = ctx.iadd(&curn, &cand);
                    let v = self.value(ctx, gm, &cidx);
                    let vi = ctx.iadd(&vrow, &cand);
                    let vis = ctx.ld_global_u32(gm, self.bufs.visited, &vi);
                    let visf = ctx.u2f(&vis);
                    let unvis = ctx.fsub(&one_f, &visf);
                    let p = ctx.fmul(&v, &unvis);
                    sum = ctx.fadd(&sum, &p);
                    vals.push(p);
                    cands.push(cand);
                }

                let feasible = ctx.fgt(&sum, &zero_f);
                let mut next = ctx.splat_u32(0);

                ctx.branch(&feasible);
                ctx.with_mask(gm, &feasible, |ctx, _gm| {
                    let q = ctx.lcg_next_f32(&mut lcg);
                    let exploit = ctx.flt(&q, &q0);

                    // Exploitation: branch-free argmax over candidates.
                    let mut bx_v = ctx.splat_f32(-1.0);
                    let mut bx_c = cands[0].clone();
                    for c in 0..nn as usize {
                        let better = ctx.fgt(&vals[c], &bx_v);
                        bx_v = ctx.select_f32(&better, &vals[c], &bx_v);
                        bx_c = ctx.select_u32(&better, &cands[c], &bx_c);
                    }

                    // Exploration: branch-free roulette.
                    let r = ctx.lcg_next_f32(&mut lcg);
                    let target = ctx.fmul(&r, &sum);
                    let mut cum = ctx.splat_f32(0.0);
                    let mut done = Mask::none(ctx.block_dim as usize);
                    let mut rx_c = bx_c.clone();
                    for c in 0..nn as usize {
                        cum = ctx.fadd(&cum, &vals[c]);
                        let crossed = ctx.fge(&cum, &target);
                        let has_p = ctx.fgt(&vals[c], &zero_f);
                        let newly = crossed.and_not(&done).and(&has_p);
                        rx_c = ctx.select_u32(&newly, &cands[c], &rx_c);
                        done = done.or(&newly);
                        ctx.charge(Op::IAlu, 2);
                    }

                    let chosen = ctx.select_u32(&exploit, &bx_c, &rx_c);
                    ctx.assign_u32(&mut next, &chosen);
                });
                let infeasible = feasible.not();
                ctx.with_mask(gm, &infeasible, |ctx, gm| {
                    let fixed = self.argmax_unvisited(ctx, gm, &tid, &cur);
                    ctx.assign_u32(&mut next, &fixed);
                });

                // Move: record, mark, accumulate length.
                let sr = ctx.splat_u32(step);
                let pos = ctx.iadd(&base, &sr);
                ctx.st_global_u32(gm, self.bufs.tours, &pos, &next);
                let vi = ctx.iadd(&vrow, &next);
                ctx.st_global_u32(gm, self.bufs.visited, &vi, &one_u);
                let didx = ctx.iadd(&curn, &next);
                let d = ctx.ld_global_f32(gm, self.bufs.dist, &didx);
                len = ctx.fadd(&len, &d);

                // ACS local update on the crossed edge, both directions:
                // tau = (1-xi) tau + xi tau0. Plain read-modify-write —
                // concurrent ants race benignly, as on real hardware.
                let fwd = ctx.iadd(&curn, &next);
                let t_f = ctx.ld_global_f32(gm, self.bufs.tau, &fwd);
                let upd_f = ctx.fma(&t_f, &keep, &xtau0);
                ctx.st_global_f32(gm, self.bufs.tau, &fwd, &upd_f);
                let nextn = ctx.imul(&next, &nreg);
                let bwd = ctx.iadd(&nextn, &cur);
                let t_b = ctx.ld_global_f32(gm, self.bufs.tau, &bwd);
                let upd_b = ctx.fma(&t_b, &keep, &xtau0);
                ctx.st_global_f32(gm, self.bufs.tau, &bwd, &upd_b);

                ctx.assign_u32(&mut cur, &next);
            }

            // Closing edge + its local update.
            let curn = ctx.imul(&cur, &nreg);
            let didx = ctx.iadd(&curn, &start);
            let d = ctx.ld_global_f32(gm, self.bufs.dist, &didx);
            len = ctx.fadd(&len, &d);

            for p in n..stride {
                let pr = ctx.splat_u32(p);
                let pos = ctx.iadd(&base, &pr);
                ctx.st_global_u32(gm, self.bufs.tours, &pos, &start);
            }
            ctx.st_global_f32(gm, self.bufs.lengths, &tid, &len);
        });
    }
}

/// ACS global update: the best-so-far ant's edges only.
pub struct AcsGlobalUpdateKernel {
    /// Device buffers.
    pub bufs: ColonyBuffers,
    /// Index of the best ant's tour row on the device.
    pub best_ant: u32,
    /// Exact best length (host-computed).
    pub best_len: f32,
    /// Global evaporation ρ.
    pub rho: f32,
}

impl AcsGlobalUpdateKernel {
    /// One thread per tour edge of the single best ant.
    pub fn config(&self) -> LaunchConfig {
        LaunchConfig::new(self.bufs.n.div_ceil(128), 128).regs(12)
    }
}

impl Kernel for AcsGlobalUpdateKernel {
    fn name(&self) -> &'static str {
        "acs_global_update"
    }

    fn run_block(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem) {
        let n = self.bufs.n;
        let s = ctx.global_thread_idx();
        let limit = ctx.splat_u32(n);
        let in_range = ctx.ult(&s, &limit);
        ctx.if_then(gm, &in_range, |ctx, gm| {
            let base = ctx.splat_u32(self.best_ant * self.bufs.stride);
            let i0 = ctx.iadd(&base, &s);
            let one = ctx.splat_u32(1);
            let i1 = ctx.iadd(&i0, &one);
            let c0 = ctx.ld_global_u32(gm, self.bufs.tours, &i0);
            let c1 = ctx.ld_global_u32(gm, self.bufs.tours, &i1);
            let nreg = ctx.splat_u32(n);
            let keep = ctx.splat_f32(1.0 - self.rho);
            let dep = ctx.splat_f32(self.rho / self.best_len);
            for (a, b) in [(&c0, &c1), (&c1, &c0)] {
                let ra = ctx.imul(a, &nreg);
                let idx = ctx.iadd(&ra, b);
                let t = ctx.ld_global_f32(gm, self.bufs.tau, &idx);
                let out = ctx.fma(&t, &keep, &dep);
                ctx.st_global_f32(gm, self.bufs.tau, &idx, &out);
            }
        });
    }
}

/// Full ACS colony on the simulated GPU.
pub struct GpuAntColonySystem<'a> {
    inst: &'a TspInstance,
    params: AcoParams,
    acs: AcsParams,
    dev: DeviceSpec,
    gm: GlobalMem,
    bufs: ColonyBuffers,
    tau0: f32,
    iteration: u64,
    best: Option<(Tour, u64)>,
    /// Best length found in the most recent iteration (`u64::MAX` before
    /// the first) — the iteration-best stream for lifecycle observers.
    last_iter_best: u64,
    exec_threads: usize,
    /// Host copy of the candidate lists (local-search fallbacks).
    nn_host: aco_tsp::NearestNeighborLists,
    local_search: LocalSearch,
    ls_scope: LsScope,
    /// Device scratch of the per-ant 2-opt kernel family (on demand).
    ls_dev: Option<TwoOptDev>,
    /// Device scratch of the batched all-ants 2-opt family (on demand).
    ls_batch: Option<TwoOptBatchDev>,
    /// Device scratch of the `or_opt` kernel family (on demand).
    ls_oropt: Option<OrOptDev>,
    ls_scratch: LsScratch,
    ls_improvement: u64,
    /// Engine-donated extra host threads (see `set_thread_donor`).
    donor: Option<Arc<AtomicUsize>>,
}

impl<'a> GpuAntColonySystem<'a> {
    /// Allocate an ACS colony (default 10 ants, per the book) on `dev`.
    pub fn new(inst: &'a TspInstance, params: AcoParams, acs: AcsParams, dev: DeviceSpec) -> Self {
        let nn = aco_tsp::NearestNeighborLists::build(inst.matrix(), params.nn_size)
            .expect("instance has >= 2 cities");
        let c_nn = aco_tsp::nearest_neighbor_tour(inst.matrix(), 0).length(inst.matrix());
        Self::with_artifacts(inst, params, acs, dev, &nn, c_nn)
    }

    /// Allocate an ACS colony reusing precomputed host artifacts (shared
    /// NN lists and greedy-tour length); see `AntSystem::with_artifacts`.
    pub fn with_artifacts(
        inst: &'a TspInstance,
        params: AcoParams,
        acs: AcsParams,
        dev: DeviceSpec,
        nn_lists: &aco_tsp::NearestNeighborLists,
        c_nn: u64,
    ) -> Self {
        let mut params = params;
        if params.num_ants.is_none() {
            params.num_ants = Some(10);
        }
        let mut gm = GlobalMem::new();
        let bufs = ColonyBuffers::allocate_with_artifacts(&mut gm, inst, &params, nn_lists, c_nn);
        // ACS initialisation: tau0 = 1/(n C_nn); eta^beta table in `choice`.
        let tau0 = 1.0 / (inst.n() as f32 * c_nn as f32);
        gm.f32_mut(bufs.tau).fill(tau0);
        let eta_kernel = ChoiceKernel { bufs, alpha: 0.0, beta: params.beta };
        launch(&dev, &eta_kernel.config(), &eta_kernel, &mut gm, SimMode::Full)
            .expect("choice kernel fits any device");
        GpuAntColonySystem {
            inst,
            params,
            acs,
            dev,
            gm,
            bufs,
            tau0,
            iteration: 0,
            best: None,
            last_iter_best: u64::MAX,
            exec_threads: 1,
            nn_host: nn_lists.clone(),
            local_search: LocalSearch::None,
            ls_scope: LsScope::IterationBest,
            ls_dev: None,
            ls_batch: None,
            ls_oropt: None,
            ls_scratch: LsScratch::new(),
            ls_improvement: 0,
            donor: None,
        }
    }

    /// Configure the per-iteration local search (see
    /// [`super::GpuAntSystem::set_local_search`]): `TwoOptNn` runs as
    /// the device kernel family (batched all-ants variant for
    /// [`LsScope::AllAnts`]), `OrOpt` as the windowed `or_opt` family;
    /// only the host-only `TwoOpt` remains a host pass with a device
    /// write-back.
    pub fn set_local_search(&mut self, ls: LocalSearch, scope: LsScope) {
        self.local_search = ls;
        self.ls_scope = scope;
        if ls.per_iteration() == LocalSearch::TwoOptNn {
            if scope == LsScope::AllAnts && self.ls_batch.is_none() {
                self.ls_batch = Some(TwoOptBatchDev::allocate(
                    &mut self.gm,
                    self.bufs.n,
                    self.bufs.m,
                    self.bufs.nn,
                    self.bufs.stride,
                    self.bufs.dist,
                    self.bufs.tours,
                    self.bufs.lengths,
                    self.bufs.nn_list,
                ));
            }
            if scope == LsScope::IterationBest && self.ls_dev.is_none() {
                self.ls_dev = Some(TwoOptDev::allocate(
                    &mut self.gm,
                    self.bufs.n,
                    self.bufs.nn,
                    self.bufs.stride,
                    self.bufs.dist,
                    self.bufs.tours,
                    self.bufs.lengths,
                    self.bufs.nn_list,
                ));
            }
        }
        if ls.per_iteration() == LocalSearch::OrOpt && self.ls_oropt.is_none() {
            self.ls_oropt = Some(OrOptDev::allocate(
                &mut self.gm,
                self.bufs.n,
                self.bufs.m,
                self.bufs.nn,
                self.bufs.stride,
                self.bufs.dist,
                self.bufs.tours,
                self.bufs.lengths,
                self.bufs.nn_list,
            ));
        }
    }

    /// Total tour-length reduction attributable to local search so far.
    pub fn local_search_improvement(&self) -> u64 {
        self.ls_improvement
    }

    /// Execute the simulator's blocks across up to `threads` host threads
    /// (a device profile's exec-thread budget). Functional results,
    /// counters and modeled times are bit-identical for every value — see
    /// [`aco_simt::launch_threads`] — so this only trades host cores for
    /// wall clock.
    pub fn set_exec_threads(&mut self, threads: usize) {
        self.exec_threads = threads.max(1);
    }

    /// Attach the engine's idle-worker donation counter (see
    /// [`super::GpuAntSystem::set_thread_donor`]); results stay
    /// bit-identical at any thread count, so donation only trades
    /// wall-clock.
    pub fn set_thread_donor(&mut self, donor: Arc<AtomicUsize>) {
        self.donor = Some(donor);
    }

    /// Host threads for the next launch: the profile budget plus any
    /// currently-donated idle engine workers (bounded).
    fn effective_threads(&self) -> usize {
        let donated = self
            .donor
            .as_ref()
            .map_or(0, |d| d.load(Ordering::Relaxed).min(super::MAX_DONATED_THREADS));
        self.exec_threads + donated
    }

    /// Best solution so far (exact length).
    pub fn best(&self) -> Option<(&Tour, u64)> {
        self.best.as_ref().map(|(t, l)| (t, *l))
    }

    /// `tau0` in use.
    pub fn tau0(&self) -> f32 {
        self.tau0
    }

    /// Device pheromone matrix (host view, for tests).
    pub fn tau(&self) -> &[f32] {
        self.gm.f32(self.bufs.tau)
    }

    /// One ACS iteration; returns `(best_so_far, tour_ms, update_ms,
    /// ls_ms)` where `ls_ms` is the modeled time of the local-search
    /// kernel family (0 without one).
    pub fn iterate(&mut self) -> Result<AcsIterReport, SimtError> {
        self.iterate_dynamics(None).map(|(rep, _)| rep)
    }

    /// [`iterate`](Self::iterate), additionally measuring search dynamics
    /// when a config is supplied. The trail is read back after the global
    /// update kernel, so entropy/λ-branching see the iteration-boundary
    /// state; the O(n²) scans run only when `dynamics` is `Some`.
    pub fn iterate_dynamics(
        &mut self,
        dynamics: Option<&aco_obs::DynamicsConfig>,
    ) -> Result<(AcsIterReport, Option<aco_obs::RawDynamics>), SimtError> {
        self.bufs.clear_visited(&mut self.gm);
        let tk = AcsTourKernel {
            bufs: self.bufs,
            q0: self.acs.q0 as f32,
            xi: self.acs.xi as f32,
            tau0: self.tau0,
            seed: self.params.seed,
            iteration: self.iteration,
        };
        let threads = self.effective_threads();
        let rt =
            launch_threads(&self.dev, &tk.config(), &tk, &mut self.gm, SimMode::Full, threads)?;

        // Host-exact best tracking over the colony, with the configured
        // local search applied before the best-so-far decision (and
        // therefore before the global update deposits).
        let n = self.bufs.n as usize;
        let mut tours: Vec<Tour> = self
            .bufs
            .read_tours(&self.gm)
            .into_iter()
            .map(|t| Tour::new(t[..n].to_vec()).expect("device tours are permutations"))
            .collect();
        let mut lens: Vec<u64> = tours.iter().map(|t| t.length(self.inst.matrix())).collect();
        let mut ls_ms = 0.0;
        if self.local_search.runs_per_iteration() {
            let ants: Vec<usize> = match self.ls_scope {
                LsScope::IterationBest => vec![super::first_min(&lens)],
                LsScope::AllAnts => (0..tours.len()).collect(),
            };
            ls_ms += self.ls_pass(&ants, &mut tours, &mut lens)?;
        }
        let best_ant = super::first_min(&lens) as u32;
        let best_this_iter = lens[best_ant as usize];
        if self.best.as_ref().is_none_or(|&(_, b)| best_this_iter < b) {
            self.best = Some((tours[best_ant as usize].clone(), best_this_iter));
        }
        self.last_iter_best = best_this_iter;

        // Global update uses the best-so-far tour; if it came from an
        // earlier iteration, refresh its row on the device.
        let (best_tour, best_len) = self.best.as_ref().expect("at least one ant ran").clone();
        self.bufs.write_tour(&mut self.gm, best_ant as usize, &best_tour, best_len);
        let uk = AcsGlobalUpdateKernel {
            bufs: self.bufs,
            best_ant,
            best_len: best_len as f32,
            rho: self.params.rho,
        };
        let threads = self.effective_threads();
        let ru =
            launch_threads(&self.dev, &uk.config(), &uk, &mut self.gm, SimMode::Full, threads)?;

        self.iteration += 1;
        let raw = dynamics.map(|cfg| {
            let tau = &self.gm.f32(self.bufs.tau)[..n * n];
            aco_obs::dynamics::compute_raw(cfg, &lens, tau, n)
        });
        Ok(((best_len, rt.time.total_ms, ru.time.total_ms, ls_ms), raw))
    }

    /// Improve the window of ant tours with the configured strategy (the
    /// shared [`super::LsPass`] path), accounting the improvement
    /// telemetry.
    fn ls_pass(
        &mut self,
        ants: &[usize],
        tours: &mut [Tour],
        lens: &mut [u64],
    ) -> Result<f64, SimtError> {
        let threads = self.effective_threads();
        let GpuAntColonySystem {
            dev,
            bufs,
            ls_dev,
            ls_batch,
            ls_oropt,
            local_search,
            inst,
            nn_host,
            ls_scratch,
            gm,
            ls_improvement,
            ..
        } = &mut *self;
        let pass = super::LsPass {
            dev,
            bufs: *bufs,
            ls_dev: *ls_dev,
            batch_dev: *ls_batch,
            oropt_dev: *ls_oropt,
            exec_threads: threads,
            strategy: local_search.per_iteration(),
        };
        let before: u64 = ants.iter().map(|&a| lens[a]).sum();
        let ms = pass.improve_ants(gm, inst, nn_host, ls_scratch, ants, tours, lens)?;
        let after: u64 = ants.iter().map(|&a| lens[a]).sum();
        *ls_improvement += before - after;
        Ok(ms)
    }

    /// Run `iters` iterations; returns the best length.
    pub fn run(&mut self, iters: usize) -> Result<u64, SimtError> {
        let mut best = u64::MAX;
        for _ in 0..iters {
            best = self.iterate()?.0;
        }
        Ok(best)
    }

    /// Best length found in the most recent iteration (`u64::MAX` before
    /// the first).
    pub fn last_iter_best(&self) -> u64 {
        self.last_iter_best
    }

    /// Ctx-driven run: cancellation/deadline checked at every iteration
    /// boundary (between simulated kernel launches); one iteration-best
    /// event emitted per iteration. `on_iter` sees each iteration's
    /// `(tour_ms, update_ms, ls_ms)` modeled times.
    pub fn run_ctx(
        &mut self,
        iterations: usize,
        ctx: &crate::lifecycle::SolveCtx,
        mut on_iter: impl FnMut(f64, f64, f64),
    ) -> Result<crate::lifecycle::RunOutcome, SimtError> {
        crate::lifecycle::try_drive_dynamics(iterations, ctx, |k| {
            let ((best, tour_ms, update_ms, ls_ms), raw) = self.iterate_dynamics(ctx.dynamics())?;
            if let Some(trace) = ctx.trace() {
                trace.record_iteration(k, tour_ms, ls_ms, update_ms);
            }
            on_iter(tour_ms, update_ms, ls_ms);
            Ok((self.last_iter_best, best, raw))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aco_tsp::generator::uniform_random;

    #[test]
    fn gpu_acs_builds_valid_improving_tours() {
        let inst = uniform_random("gacs", 40, 800.0, 3);
        let mut acs = GpuAntColonySystem::new(
            &inst,
            AcoParams::default().nn(10).seed(9),
            AcsParams::default(),
            DeviceSpec::tesla_m2050(),
        );
        let (first, tour_ms, update_ms, ls_ms) = acs.iterate().expect("valid launch");
        assert!(tour_ms > 0.0 && update_ms > 0.0);
        assert_eq!(ls_ms, 0.0, "no local search configured");
        let last = acs.run(15).expect("valid launch");
        assert!(last <= first);
        let (t, l) = acs.best().expect("ran");
        assert!(t.is_valid());
        assert_eq!(l, t.length(inst.matrix()));
    }

    #[test]
    fn local_update_keeps_tau_at_or_above_tau0() {
        let inst = uniform_random("gacs2", 30, 600.0, 5);
        let mut acs = GpuAntColonySystem::new(
            &inst,
            AcoParams::default().nn(8).seed(2),
            AcsParams::default(),
            DeviceSpec::tesla_c1060(),
        );
        acs.run(5).expect("valid launch");
        let tau0 = acs.tau0();
        let lo = tau0 * (1.0 - 1e-4);
        assert!(
            acs.tau().iter().all(|&t| t >= lo),
            "local rule is a convex combination with tau0; tau must not sink below it"
        );
    }

    #[test]
    fn acs_update_is_much_cheaper_than_as_full_matrix_update() {
        // ACS deposits on one tour; AS touches all n^2 cells — the GPU cost
        // gap should be large even on a small instance.
        let inst = uniform_random("gacs3", 64, 900.0, 7);
        let mut acs = GpuAntColonySystem::new(
            &inst,
            AcoParams::default().nn(10).seed(4),
            AcsParams::default(),
            DeviceSpec::tesla_m2050(),
        );
        let (_, _, acs_update_ms, _) = acs.iterate().expect("valid launch");

        let mut gm = GlobalMem::new();
        let bufs = ColonyBuffers::allocate(&mut gm, &inst, &AcoParams::default().nn(10));
        let ev = super::super::pheromone::EvaporationKernel { bufs, rho: 0.5 };
        let r = launch(&DeviceSpec::tesla_m2050(), &ev.config(), &ev, &mut gm, SimMode::Full)
            .expect("valid launch");
        // Just the AS evaporation pass already rivals the whole ACS update.
        assert!(
            acs_update_ms < r.time.total_ms * 4.0,
            "ACS update {acs_update_ms} should be of the order of a single evaporation {}",
            r.time.total_ms
        );
    }

    #[test]
    fn gpu_acs_quality_tracks_cpu_acs() {
        let inst = uniform_random("gacs4", 45, 800.0, 11);
        let mut gpu = GpuAntColonySystem::new(
            &inst,
            AcoParams::default().nn(12).seed(3),
            AcsParams::default(),
            DeviceSpec::tesla_m2050(),
        );
        let gpu_best = gpu.run(20).expect("valid launch") as f64;
        let mut cpu = crate::cpu::acs::AntColonySystem::new(
            &inst,
            AcoParams::default().nn(12).seed(3),
            AcsParams::default(),
        );
        let cpu_best = cpu.run(20) as f64;
        let gap = ((gpu_best - cpu_best) / cpu_best).abs();
        assert!(gap < 0.15, "GPU ACS {gpu_best} vs CPU ACS {cpu_best}");
    }
}
