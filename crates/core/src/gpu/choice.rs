//! The "Choice kernel" (Table II, version 2).
//!
//! Computes `choice_info[i][j] = tau[i][j]^alpha * (1/d[i][j])^beta` with
//! one thread per matrix cell, once per ACO iteration — removing the
//! redundant per-step heuristic recomputation of the baseline version
//! ("Repeated computations of the heuristic information can be avoided by
//! using an additional data structure", Section IV-A).

use aco_simt::prelude::*;

use super::buffers::ColonyBuffers;

/// η value used for zero-distance cells (ACOTSP clamps `d = 0` edges).
pub const ETA_ZERO_DIST: f32 = 10.0;

/// One thread per pheromone-matrix cell.
pub struct ChoiceKernel {
    /// Device buffers of the colony.
    pub bufs: ColonyBuffers,
    /// Pheromone weight α.
    pub alpha: f32,
    /// Heuristic weight β.
    pub beta: f32,
}

impl ChoiceKernel {
    /// Launch geometry: `n^2` threads in 256-wide blocks.
    pub fn config(&self) -> LaunchConfig {
        let cells = self.bufs.n * self.bufs.n;
        LaunchConfig::new(cells.div_ceil(256), 256).regs(12)
    }
}

impl Kernel for ChoiceKernel {
    fn name(&self) -> &'static str {
        "choice_info"
    }

    fn run_block(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem) {
        let cells = self.bufs.n * self.bufs.n;
        let idx = ctx.global_thread_idx();
        let limit = ctx.splat_u32(cells);
        let in_range = ctx.ult(&idx, &limit);
        ctx.if_then(gm, &in_range, |ctx, gm| {
            let tau = ctx.ld_global_f32(gm, self.bufs.tau, &idx);
            let d = ctx.ld_global_f32(gm, self.bufs.dist, &idx);
            // eta = 1/d, clamped on the diagonal / zero-distance cells.
            let zero = ctx.splat_f32(0.0);
            let is_zero = ctx.fle(&d, &zero);
            let one = ctx.splat_f32(1.0);
            let eta_raw = ctx.fdiv(&one, &d);
            let eta_clamp = ctx.splat_f32(ETA_ZERO_DIST);
            let eta = ctx.select_f32(&is_zero, &eta_clamp, &eta_raw);
            let a = ctx.splat_f32(self.alpha);
            let b = ctx.splat_f32(self.beta);
            let ta = ctx.fpow(&tau, &a);
            let eb = ctx.fpow(&eta, &b);
            let c = ctx.fmul(&ta, &eb);
            ctx.st_global_f32(gm, self.bufs.choice, &idx, &c);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::AcoParams;
    use aco_tsp::generator::uniform_random;

    #[test]
    fn choice_matches_cpu_formula() {
        let inst = uniform_random("c", 32, 500.0, 7);
        let mut gm = GlobalMem::new();
        let bufs = ColonyBuffers::allocate(&mut gm, &inst, &AcoParams::default().nn(10));
        let k = ChoiceKernel { bufs, alpha: 1.0, beta: 2.0 };
        let dev = DeviceSpec::tesla_c1060();
        let r = launch(&dev, &k.config(), &k, &mut gm, SimMode::Full).unwrap();
        assert!(r.time.total_ms > 0.0);

        let tau0 = gm.f32(bufs.tau)[1];
        let n = 32;
        for i in 0..n {
            for j in 0..n {
                let d = inst.dist(i, j) as f32;
                let eta = if d == 0.0 { ETA_ZERO_DIST } else { 1.0 / d };
                let want = tau0.powf(1.0) * eta.powf(2.0);
                let got = gm.f32(bufs.choice)[i * n + j];
                let rel = (got - want).abs() / want.max(1e-20);
                assert!(rel < 1e-4, "cell ({i},{j}): {got} vs {want}");
            }
        }
    }

    #[test]
    fn kernel_charges_two_sfu_pows_per_cell() {
        let inst = uniform_random("c", 16, 500.0, 8);
        let mut gm = GlobalMem::new();
        let bufs = ColonyBuffers::allocate(&mut gm, &inst, &AcoParams::default().nn(5));
        let k = ChoiceKernel { bufs, alpha: 1.0, beta: 2.0 };
        let dev = DeviceSpec::tesla_c1060();
        let r = launch(&dev, &k.config(), &k, &mut gm, SimMode::Full).unwrap();
        // 256 cells = 8 warps; at least 2 pow + 1 div SFU per warp, 16 cyc
        // each on GT200 -> issue cycles comfortably above the pure-ALU cost.
        assert!(r.stats.max_sm_cycles() > 0.0);
        assert!(r.stats.warp_instructions >= 8.0 * 10.0);
    }
}
