//! Device-memory layout of a colony.
//!
//! One [`ColonyBuffers`] bundle holds every device allocation the paper's
//! kernels touch, in the exact flat layouts the CUDA code would use:
//! row-major `n x n` matrices, a flat `n x nn` candidate list, and tours
//! padded to a multiple of the pheromone tile θ (Section IV-B: "we solve
//! this by applying padding in the ants tour array").

use aco_simt::{DevicePtr, GlobalMem};
use aco_tsp::{NearestNeighborLists, TspInstance};

use crate::params::AcoParams;

/// Tile size θ used by the tiled pheromone kernels and as the tour
/// padding unit (the paper's "empirically demonstrated optimum thread
/// block layout").
pub const THETA: u32 = 256;

/// All device allocations for one colony. `Copy` so kernels capture it.
#[derive(Debug, Clone, Copy)]
pub struct ColonyBuffers {
    /// Cities.
    pub n: u32,
    /// Ants.
    pub m: u32,
    /// Candidate-list depth.
    pub nn: u32,
    /// Row stride of the per-ant tour array: `n + 1` (closing city) padded
    /// up to a multiple of [`THETA`].
    pub stride: u32,
    /// `n x n` distances, f32 (the GPU-side copy of the integer matrix).
    pub dist: DevicePtr<f32>,
    /// `n x n` pheromone matrix τ.
    pub tau: DevicePtr<f32>,
    /// `n x n` choice info τ^α·η^β.
    pub choice: DevicePtr<f32>,
    /// `n x nn` nearest-neighbour lists.
    pub nn_list: DevicePtr<u32>,
    /// `m x stride` tours.
    pub tours: DevicePtr<u32>,
    /// `m` tour lengths (f32, as accumulated on the device).
    pub lengths: DevicePtr<f32>,
    /// `m x n` visited flags (task-kernel global tabu).
    pub visited: DevicePtr<u32>,
    /// `m x n` selection-probability scratch (baseline task kernels).
    pub prob: DevicePtr<f32>,
    /// `12 x m` CURAND-style RNG state words (48 bytes per thread).
    pub curand: DevicePtr<u32>,
}

impl ColonyBuffers {
    /// Allocate and upload everything for `inst` under `params`, computing
    /// the nearest-neighbour lists and greedy-tour length from scratch.
    pub fn allocate(gm: &mut GlobalMem, inst: &TspInstance, params: &AcoParams) -> Self {
        let nn_lists = NearestNeighborLists::build(inst.matrix(), params.nn_size)
            .expect("instance has >= 2 cities");
        let c_nn = aco_tsp::nearest_neighbor_tour(inst.matrix(), 0).length(inst.matrix());
        Self::allocate_with_artifacts(gm, inst, params, &nn_lists, c_nn)
    }

    /// Allocate from precomputed artifacts (shared NN lists and greedy
    /// tour length), so batch engines can amortise host-side preprocessing
    /// across colonies on the same instance.
    pub fn allocate_with_artifacts(
        gm: &mut GlobalMem,
        inst: &TspInstance,
        params: &AcoParams,
        nn_lists: &NearestNeighborLists,
        c_nn: u64,
    ) -> Self {
        let n = inst.n();
        let m = params.ants_for(n);
        let nn = nn_lists.depth();
        let stride = ((n + 1) as u32).next_multiple_of(THETA);

        let dist = gm.alloc_f32(n * n);
        let dist_host: Vec<f32> = inst.matrix().as_flat().iter().map(|&d| d as f32).collect();
        gm.write_f32(dist, &dist_host);

        let tau = gm.alloc_f32(n * n);
        let tau0 = initial_pheromone_from(c_nn, m);
        gm.write_f32(tau, &vec![tau0; n * n]);

        let choice = gm.alloc_f32(n * n);
        let nn_list = gm.alloc_u32(n * nn);
        gm.write_u32(nn_list, nn_lists.as_flat());

        let tours = gm.alloc_u32(m * stride as usize);
        let lengths = gm.alloc_f32(m);
        let visited = gm.alloc_u32(m * n);
        let prob = gm.alloc_f32(m * n);
        let curand = gm.alloc_u32(12 * m);
        // Seed CURAND state words deterministically (curand_init equivalent).
        let curand_host: Vec<u32> = (0..12 * m)
            .map(|i| aco_simt::rng::PmRng::thread_seed(params.seed ^ 0xC0DE, i as u64))
            .collect();
        gm.write_u32(curand, &curand_host);

        ColonyBuffers {
            n: n as u32,
            m: m as u32,
            nn: nn as u32,
            stride,
            dist,
            tau,
            choice,
            nn_list,
            tours,
            lengths,
            visited,
            prob,
            curand,
        }
    }

    /// Clear the visited scratch (host-side `cudaMemset` before each
    /// construction launch).
    pub fn clear_visited(&self, gm: &mut GlobalMem) {
        gm.u32_mut(self.visited).fill(0);
    }

    /// Read tours back as host vectors (one `Vec<u32>` of `n + 1` cities
    /// per ant, closing city included).
    pub fn read_tours(&self, gm: &GlobalMem) -> Vec<Vec<u32>> {
        let all = gm.u32(self.tours);
        (0..self.m as usize)
            .map(|a| {
                all[a * self.stride as usize..a * self.stride as usize + self.n as usize + 1]
                    .to_vec()
            })
            .collect()
    }

    /// Read the f32 tour lengths back.
    pub fn read_lengths(&self, gm: &GlobalMem) -> Vec<f32> {
        gm.f32(self.lengths).to_vec()
    }

    /// Upload one host-side tour into `ant`'s device row — order,
    /// closing city, θ-padding and the f32 length — keeping device
    /// memory in sync with a host-improved tour (the local-search
    /// write-back path of both GPU colonies).
    pub fn write_tour(&self, gm: &mut GlobalMem, ant: usize, tour: &aco_tsp::Tour, len: u64) {
        let n = self.n as usize;
        let stride = self.stride as usize;
        {
            let cells = gm.u32_mut(self.tours);
            let row = &mut cells[ant * stride..(ant + 1) * stride];
            row[..n].copy_from_slice(tour.order());
            for c in row[n..].iter_mut() {
                *c = tour.order()[0];
            }
        }
        gm.f32_mut(self.lengths)[ant] = len as f32;
    }

    /// Upload host-built tours (with closing city and padding) and their
    /// lengths — used by the pheromone-update experiments, which need
    /// realistic tours without paying for a full construction launch.
    pub fn upload_tours(
        &self,
        gm: &mut GlobalMem,
        tours: &[aco_tsp::Tour],
        matrix: &aco_tsp::DistanceMatrix,
    ) {
        assert_eq!(tours.len(), self.m as usize, "one tour per ant");
        let stride = self.stride as usize;
        let n = self.n as usize;
        {
            let buf = gm.u32_mut(self.tours);
            for (a, tour) in tours.iter().enumerate() {
                let row = &mut buf[a * stride..(a + 1) * stride];
                row[..n].copy_from_slice(tour.order());
                let start = tour.order()[0];
                for cell in row[n..].iter_mut() {
                    *cell = start;
                }
            }
        }
        let lengths: Vec<f32> = tours.iter().map(|t| t.length(matrix) as f32).collect();
        gm.write_f32(self.lengths, &lengths);
    }
}

/// `tau0 = m / C_nn` (Ant System initialisation, as on the CPU side).
pub fn initial_pheromone(inst: &TspInstance, m: usize) -> f32 {
    let c_nn = aco_tsp::nearest_neighbor_tour(inst.matrix(), 0).length(inst.matrix());
    initial_pheromone_from(c_nn, m)
}

/// `tau0 = m / C_nn` from a precomputed greedy-tour length (the formula
/// behind [`initial_pheromone`] and [`ColonyBuffers::allocate_with_artifacts`]).
pub fn initial_pheromone_from(c_nn: u64, m: usize) -> f32 {
    m as f32 / c_nn as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use aco_tsp::generator::uniform_random;
    use rand::SeedableRng;

    #[test]
    fn allocation_shapes() {
        let inst = uniform_random("b", 48, 1000.0, 1);
        let mut gm = GlobalMem::new();
        let b = ColonyBuffers::allocate(&mut gm, &inst, &AcoParams::default().nn(20));
        assert_eq!(b.n, 48);
        assert_eq!(b.m, 48);
        assert_eq!(b.nn, 20);
        assert_eq!(b.stride, 256); // 49 padded to one tile
        assert_eq!(gm.f32(b.dist).len(), 48 * 48);
        assert_eq!(gm.u32(b.nn_list).len(), 48 * 20);
        assert_eq!(gm.u32(b.tours).len(), 48 * 256);
        assert_eq!(gm.u32(b.curand).len(), 12 * 48);
    }

    #[test]
    fn stride_covers_closing_city() {
        let inst = uniform_random("b", 256, 1000.0, 2);
        let mut gm = GlobalMem::new();
        let b = ColonyBuffers::allocate(&mut gm, &inst, &AcoParams::default());
        // 257 entries needed -> two tiles.
        assert_eq!(b.stride, 512);
    }

    #[test]
    fn tau_initialised_to_m_over_cnn() {
        let inst = uniform_random("b", 30, 500.0, 3);
        let mut gm = GlobalMem::new();
        let b = ColonyBuffers::allocate(&mut gm, &inst, &AcoParams::default().ants(10));
        let tau0 = initial_pheromone(&inst, 10);
        assert!(gm.f32(b.tau).iter().all(|&t| t == tau0));
        assert!(tau0 > 0.0);
    }

    #[test]
    fn upload_tours_pads_with_start_city() {
        let inst = uniform_random("b", 10, 500.0, 5);
        let mut gm = GlobalMem::new();
        let b = ColonyBuffers::allocate(&mut gm, &inst, &AcoParams::default().nn(5).ants(3));
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let tours: Vec<aco_tsp::Tour> =
            (0..3).map(|_| aco_tsp::Tour::random(10, &mut rng)).collect();
        b.upload_tours(&mut gm, &tours, inst.matrix());
        let back = b.read_tours(&gm);
        for (a, t) in back.iter().enumerate() {
            assert_eq!(&t[..10], tours[a].order());
            assert_eq!(t[10], tours[a].order()[0], "closing city");
        }
        let lens = b.read_lengths(&gm);
        assert_eq!(lens[1], tours[1].length(inst.matrix()) as f32);
        // Padding beyond the closing city repeats the start.
        let raw = gm.u32(b.tours);
        assert_eq!(raw[b.stride as usize - 1], tours[0].order()[0]);
    }

    #[test]
    fn visited_clear_works() {
        let inst = uniform_random("b", 20, 500.0, 4);
        let mut gm = GlobalMem::new();
        let b = ColonyBuffers::allocate(&mut gm, &inst, &AcoParams::default());
        gm.u32_mut(b.visited)[5] = 1;
        b.clear_visited(&mut gm);
        assert!(gm.u32(b.visited).iter().all(|&v| v == 0));
    }
}
