//! The full GPU Ant System — both stages on the (simulated) device.
//!
//! This is the paper's headline: "In this paper, we fully develop the ACO
//! algorithm for the TSP on GPUs, so that both main phases are
//! parallelised." One [`GpuAntSystem`] owns the device memory, runs
//! `choice → construct → update` per iteration with any combination of
//! [`TourStrategy`] and [`PheromoneStrategy`], tracks the best tour, and
//! reports per-stage modeled times.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use aco_localsearch::{LocalSearch, LsScope, LsScratch, OrOptDev, TwoOptBatchDev, TwoOptDev};
use aco_simt::prelude::*;
use aco_simt::SimtError;
use aco_tsp::{NearestNeighborLists, Tour, TspInstance};

use super::buffers::ColonyBuffers;
use super::pheromone::{run_pheromone_threads, PheromoneStrategy};
use super::tour::{run_tour_threads, TourRun, TourStrategy};
use crate::params::AcoParams;

/// Per-iteration report of the GPU colony.
#[derive(Debug, Clone)]
pub struct GpuIterationReport {
    /// Modeled milliseconds of tour construction (incl. the Choice kernel).
    pub tour_ms: f64,
    /// Modeled milliseconds of the pheromone update.
    pub pheromone_ms: f64,
    /// Modeled milliseconds of the local-search kernel family (0 without
    /// a configured [`LocalSearch`], and for the host-fallback passes,
    /// which are host work like the exact best tracking).
    pub ls_ms: f64,
    /// Best (exact, host-recomputed) tour length this iteration.
    pub iter_best: u64,
    /// Best length so far.
    pub best_so_far: u64,
    /// Construction-stage detail.
    pub tour_run: TourRun,
}

/// Ant System with both stages on the simulated GPU.
pub struct GpuAntSystem<'a> {
    inst: &'a TspInstance,
    params: AcoParams,
    dev: DeviceSpec,
    gm: GlobalMem,
    bufs: ColonyBuffers,
    tour_strategy: TourStrategy,
    pheromone_strategy: PheromoneStrategy,
    iteration: u64,
    best: Option<(Tour, u64)>,
    exec_threads: usize,
    /// Host copy of the candidate lists (local-search fallbacks).
    nn_host: NearestNeighborLists,
    local_search: LocalSearch,
    ls_scope: LsScope,
    /// Device scratch of the per-ant 2-opt kernel family (on demand).
    ls_dev: Option<TwoOptDev>,
    /// Device scratch of the batched all-ants 2-opt family (on demand).
    ls_batch: Option<TwoOptBatchDev>,
    /// Device scratch of the `or_opt` kernel family (on demand).
    ls_oropt: Option<OrOptDev>,
    ls_scratch: LsScratch,
    ls_improvement: u64,
    /// Engine-donated extra host threads (see `set_thread_donor`).
    donor: Option<Arc<AtomicUsize>>,
}

impl<'a> GpuAntSystem<'a> {
    /// Allocate a colony on `dev`.
    pub fn new(
        inst: &'a TspInstance,
        params: AcoParams,
        dev: DeviceSpec,
        tour_strategy: TourStrategy,
        pheromone_strategy: PheromoneStrategy,
    ) -> Self {
        let nn_lists = NearestNeighborLists::build(inst.matrix(), params.nn_size)
            .expect("instance has >= 2 cities");
        let c_nn = aco_tsp::nearest_neighbor_tour(inst.matrix(), 0).length(inst.matrix());
        Self::with_artifacts(inst, params, dev, tour_strategy, pheromone_strategy, &nn_lists, c_nn)
    }

    /// Allocate a colony on `dev` reusing precomputed host artifacts
    /// (shared nearest-neighbour lists and greedy-tour length).
    pub fn with_artifacts(
        inst: &'a TspInstance,
        params: AcoParams,
        dev: DeviceSpec,
        tour_strategy: TourStrategy,
        pheromone_strategy: PheromoneStrategy,
        nn_lists: &aco_tsp::NearestNeighborLists,
        c_nn: u64,
    ) -> Self {
        let mut gm = GlobalMem::new();
        let bufs = ColonyBuffers::allocate_with_artifacts(&mut gm, inst, &params, nn_lists, c_nn);
        GpuAntSystem {
            inst,
            params,
            dev,
            gm,
            bufs,
            tour_strategy,
            pheromone_strategy,
            iteration: 0,
            best: None,
            exec_threads: 1,
            nn_host: nn_lists.clone(),
            local_search: LocalSearch::None,
            ls_scope: LsScope::IterationBest,
            ls_dev: None,
            ls_batch: None,
            ls_oropt: None,
            ls_scratch: LsScratch::new(),
            ls_improvement: 0,
            donor: None,
        }
    }

    /// Configure the per-iteration local search. [`LocalSearch::TwoOptNn`]
    /// runs *on the device* as the `two_opt` kernel family — the per-ant
    /// variant for the iteration-best scope, the batched all-ants variant
    /// (one launch per phase for the whole colony) for
    /// [`LsScope::AllAnts`] — and [`LocalSearch::OrOpt`] as the windowed
    /// `or_opt` family. Their scratch is allocated here, next to the
    /// colony buffers. Only the host-only [`LocalSearch::TwoOpt`] still
    /// runs as a host pass whose improved tours are written back to
    /// device memory before the pheromone update (a `cudaMemcpy` round
    /// trip, like ACOTSP-hybrid ports do).
    pub fn set_local_search(&mut self, ls: LocalSearch, scope: LsScope) {
        self.local_search = ls;
        self.ls_scope = scope;
        if ls.per_iteration() == LocalSearch::TwoOptNn {
            if scope == LsScope::AllAnts && self.ls_batch.is_none() {
                self.ls_batch = Some(TwoOptBatchDev::allocate(
                    &mut self.gm,
                    self.bufs.n,
                    self.bufs.m,
                    self.bufs.nn,
                    self.bufs.stride,
                    self.bufs.dist,
                    self.bufs.tours,
                    self.bufs.lengths,
                    self.bufs.nn_list,
                ));
            }
            if scope == LsScope::IterationBest && self.ls_dev.is_none() {
                self.ls_dev = Some(TwoOptDev::allocate(
                    &mut self.gm,
                    self.bufs.n,
                    self.bufs.nn,
                    self.bufs.stride,
                    self.bufs.dist,
                    self.bufs.tours,
                    self.bufs.lengths,
                    self.bufs.nn_list,
                ));
            }
        }
        if ls.per_iteration() == LocalSearch::OrOpt && self.ls_oropt.is_none() {
            self.ls_oropt = Some(OrOptDev::allocate(
                &mut self.gm,
                self.bufs.n,
                self.bufs.m,
                self.bufs.nn,
                self.bufs.stride,
                self.bufs.dist,
                self.bufs.tours,
                self.bufs.lengths,
                self.bufs.nn_list,
            ));
        }
    }

    /// Total tour-length reduction attributable to local search so far.
    pub fn local_search_improvement(&self) -> u64 {
        self.ls_improvement
    }

    /// Execute the simulator's blocks across up to `threads` host threads.
    /// Functional results, counters and modeled times are bit-identical
    /// for every value (see [`aco_simt::launch_threads`]); this only
    /// trades host wall-clock for cores.
    pub fn set_exec_threads(&mut self, threads: usize) {
        self.exec_threads = threads.max(1);
    }

    /// Attach the engine's idle-worker donation counter: each launch adds
    /// `min(counter, MAX_DONATED_THREADS)` host threads on top of the
    /// profile budget while other engine workers are parked idle. Purely
    /// a wall-clock lever — results stay bit-identical at any thread
    /// count, so reports and placements are donation-invariant.
    pub fn set_thread_donor(&mut self, donor: Arc<AtomicUsize>) {
        self.donor = Some(donor);
    }

    /// Host threads for the next launch: the profile budget plus any
    /// currently-donated idle engine workers (bounded).
    fn effective_threads(&self) -> usize {
        let donated = self
            .donor
            .as_ref()
            .map_or(0, |d| d.load(Ordering::Relaxed).min(super::MAX_DONATED_THREADS));
        self.exec_threads + donated
    }

    /// The device this colony runs on.
    pub fn device(&self) -> &DeviceSpec {
        &self.dev
    }

    /// Device buffers (for inspection).
    pub fn buffers(&self) -> ColonyBuffers {
        self.bufs
    }

    /// Best tour so far (exact integer length).
    pub fn best(&self) -> Option<(&Tour, u64)> {
        self.best.as_ref().map(|(t, l)| (t, *l))
    }

    /// Run one full iteration at the given simulation fidelity.
    ///
    /// `SimMode::Full` keeps functional output exact (needed for quality
    /// studies); sampled modes are for timing tables on large instances.
    pub fn iterate(&mut self, mode: SimMode) -> Result<GpuIterationReport, SimtError> {
        self.iterate_dynamics(mode, None).map(|(rep, _)| rep)
    }

    /// [`iterate`](Self::iterate), additionally measuring search dynamics
    /// when a config is supplied (and the mode is [`SimMode::Full`] — the
    /// host-exact lengths the statistics need only exist there). The trail
    /// is read back after the pheromone kernel, so entropy/λ-branching see
    /// the iteration-boundary state; the O(n²) scans run only when
    /// `dynamics` is `Some`.
    pub fn iterate_dynamics(
        &mut self,
        mode: SimMode,
        dynamics: Option<&aco_obs::DynamicsConfig>,
    ) -> Result<(GpuIterationReport, Option<aco_obs::RawDynamics>), SimtError> {
        let threads = self.effective_threads();
        let tour_run = run_tour_threads(
            &self.dev,
            &mut self.gm,
            self.bufs,
            self.tour_strategy,
            self.params.alpha,
            self.params.beta,
            self.params.seed,
            self.iteration,
            mode,
            threads,
        )?;

        // Host-exact best tracking (the device carries f32 lengths; the
        // host recomputes the exact integer length, like `cudaMemcpy` +
        // a validation pass would), with the configured local search
        // applied *before* the pheromone update so improved tours steer
        // the deposit. Sampled modes skip both (partial functional
        // output).
        let mut iter_best = u64::MAX;
        let mut ls_ms = 0.0;
        let mut dyn_lens: Option<Vec<u64>> = None;
        if matches!(mode, SimMode::Full) {
            let n = self.bufs.n as usize;
            let mut tours: Vec<Tour> = self
                .bufs
                .read_tours(&self.gm)
                .into_iter()
                .map(|t| Tour::new(t[..n].to_vec()).expect("device tours are permutations"))
                .collect();
            let mut lens: Vec<u64> = tours.iter().map(|t| t.length(self.inst.matrix())).collect();
            if self.local_search.runs_per_iteration() {
                let ants: Vec<usize> = match self.ls_scope {
                    LsScope::IterationBest => vec![super::first_min(&lens)],
                    LsScope::AllAnts => (0..tours.len()).collect(),
                };
                ls_ms += self.ls_pass(&ants, &mut tours, &mut lens)?;
            }
            let k = super::first_min(&lens);
            iter_best = lens[k];
            if self.best.as_ref().is_none_or(|&(_, b)| iter_best < b) {
                self.best = Some((tours[k].clone(), iter_best));
            }
            if dynamics.is_some() {
                dyn_lens = Some(lens);
            }
        }

        let threads = self.effective_threads();
        let ph = run_pheromone_threads(
            &self.dev,
            &mut self.gm,
            self.bufs,
            self.pheromone_strategy,
            self.params.rho,
            mode,
            threads,
        )?;

        self.iteration += 1;
        let raw = match (dynamics, dyn_lens) {
            (Some(cfg), Some(lens)) => {
                let n = self.bufs.n as usize;
                let tau = &self.gm.f32(self.bufs.tau)[..n * n];
                Some(aco_obs::dynamics::compute_raw(cfg, &lens, tau, n))
            }
            _ => None,
        };
        let rep = GpuIterationReport {
            tour_ms: tour_run.total_ms(),
            pheromone_ms: ph.time.total_ms,
            ls_ms,
            iter_best,
            best_so_far: self.best.as_ref().map_or(u64::MAX, |&(_, l)| l),
            tour_run,
        };
        Ok((rep, raw))
    }

    /// Improve the window of ant tours with the configured strategy (the
    /// shared [`super::LsPass`] path), accounting the improvement
    /// telemetry.
    fn ls_pass(
        &mut self,
        ants: &[usize],
        tours: &mut [Tour],
        lens: &mut [u64],
    ) -> Result<f64, SimtError> {
        let threads = self.effective_threads();
        let GpuAntSystem {
            dev,
            bufs,
            ls_dev,
            ls_batch,
            ls_oropt,
            local_search,
            inst,
            nn_host,
            ls_scratch,
            gm,
            ls_improvement,
            ..
        } = &mut *self;
        let pass = super::LsPass {
            dev,
            bufs: *bufs,
            ls_dev: *ls_dev,
            batch_dev: *ls_batch,
            oropt_dev: *ls_oropt,
            exec_threads: threads,
            strategy: local_search.per_iteration(),
        };
        let before: u64 = ants.iter().map(|&a| lens[a]).sum();
        let ms = pass.improve_ants(gm, inst, nn_host, ls_scratch, ants, tours, lens)?;
        let after: u64 = ants.iter().map(|&a| lens[a]).sum();
        *ls_improvement += before - after;
        Ok(ms)
    }

    /// Run `iters` full-fidelity iterations; returns the best length.
    pub fn run(&mut self, iters: usize) -> Result<u64, SimtError> {
        let mut best = u64::MAX;
        for _ in 0..iters {
            best = self.iterate(SimMode::Full)?.best_so_far;
        }
        Ok(best)
    }

    /// Ctx-driven full-fidelity run: cancellation/deadline checked at
    /// every iteration boundary (i.e. between simulated kernel launches);
    /// one iteration-best event emitted per iteration. `on_iter` sees
    /// each [`GpuIterationReport`] (callers accumulate modeled time).
    pub fn run_ctx(
        &mut self,
        iterations: usize,
        ctx: &crate::lifecycle::SolveCtx,
        mut on_iter: impl FnMut(&GpuIterationReport),
    ) -> Result<crate::lifecycle::RunOutcome, SimtError> {
        crate::lifecycle::try_drive_dynamics(iterations, ctx, |k| {
            let (rep, raw) = self.iterate_dynamics(SimMode::Full, ctx.dynamics())?;
            if let Some(trace) = ctx.trace() {
                trace.record_iteration(k, rep.tour_ms, rep.ls_ms, rep.pheromone_ms);
            }
            on_iter(&rep);
            Ok((rep.iter_best, rep.best_so_far, raw))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aco_tsp::generator::uniform_random;

    #[test]
    fn full_gpu_iterations_track_best_and_converge() {
        let inst = uniform_random("sys", 40, 800.0, 9);
        let mut sys = GpuAntSystem::new(
            &inst,
            AcoParams::default().nn(10).seed(5),
            DeviceSpec::tesla_m2050(),
            TourStrategy::DataParallelTex,
            PheromoneStrategy::AtomicShared,
        );
        let first = sys.iterate(SimMode::Full).unwrap();
        assert!(first.iter_best < u64::MAX);
        assert!(first.tour_ms > 0.0 && first.pheromone_ms > 0.0);
        let best = sys.run(8).unwrap();
        assert!(best <= first.iter_best);
        let (tour, len) = sys.best().expect("ran");
        assert!(tour.is_valid());
        assert_eq!(len, tour.length(inst.matrix()));
    }

    #[test]
    fn strategies_agree_on_search_behaviour() {
        // Different kernel strategies are different *schedules*, not
        // different algorithms (modulo the data-parallel selection rule):
        // all must reach a reasonable tour on a small instance.
        let inst = uniform_random("sys2", 36, 700.0, 11);
        let nn_len = aco_tsp::nearest_neighbor_tour(inst.matrix(), 0).length(inst.matrix());
        for (ts, ps) in [
            (TourStrategy::DeviceRng, PheromoneStrategy::Atomic),
            (TourStrategy::NNList, PheromoneStrategy::Scatter),
            (TourStrategy::DataParallel, PheromoneStrategy::Reduction),
        ] {
            let mut sys = GpuAntSystem::new(
                &inst,
                AcoParams::default().nn(10).seed(21),
                DeviceSpec::tesla_c1060(),
                ts,
                ps,
            );
            let best = sys.run(10).unwrap();
            assert!(
                (best as f64) < 1.6 * nn_len as f64,
                "{ts:?}/{ps:?} best {best} vs NN {nn_len}"
            );
        }
    }

    #[test]
    fn sampled_iterations_report_times_without_best() {
        let inst = uniform_random("sys3", 64, 900.0, 13);
        let mut sys = GpuAntSystem::new(
            &inst,
            AcoParams::default().nn(10),
            DeviceSpec::tesla_c1060(),
            TourStrategy::NNList,
            PheromoneStrategy::AtomicShared,
        );
        let rep = sys.iterate(SimMode::SampleBlocks(1)).unwrap();
        assert!(rep.tour_ms > 0.0);
        assert_eq!(rep.iter_best, u64::MAX); // functional output partial
    }
}
