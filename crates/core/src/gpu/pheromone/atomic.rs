//! Atomic pheromone update (Tables III/IV, versions 1–2; Figure 2).
//!
//! Two launches per update:
//!
//! 1. [`EvaporationKernel`] — one thread per matrix cell applies
//!    `tau *= (1 - rho)` (Equation 2).
//! 2. [`AtomicDepositKernel`] — one thread per cell of an ant's (padded)
//!    tour loads its edge `(i, j)` and performs
//!    `atomicAdd(&tau[i][j], 1/C_k)` on both symmetric cells
//!    (Equations 3–4). Version 1 stages the tour tile in shared memory
//!    first; version 2 reads global memory directly.
//!
//! On the Tesla C1060 the float atomics are costed as their CAS-loop
//! emulation (the paper: "those atomic operations are not supported by
//! GPUs with CCC 1.x for floating point operations").

use aco_simt::prelude::*;

use crate::gpu::buffers::{ColonyBuffers, THETA};

/// `tau *= (1 - rho)` over every cell.
pub struct EvaporationKernel {
    /// Device buffers.
    pub bufs: ColonyBuffers,
    /// Evaporation rate ρ.
    pub rho: f32,
}

impl EvaporationKernel {
    /// One thread per cell, θ-wide blocks.
    pub fn config(&self) -> LaunchConfig {
        let cells = self.bufs.n * self.bufs.n;
        LaunchConfig::new(cells.div_ceil(THETA), THETA).regs(10)
    }
}

impl Kernel for EvaporationKernel {
    fn name(&self) -> &'static str {
        "pheromone_evaporate"
    }

    fn run_block(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem) {
        let cells = self.bufs.n * self.bufs.n;
        let idx = ctx.global_thread_idx();
        let limit = ctx.splat_u32(cells);
        let in_range = ctx.ult(&idx, &limit);
        ctx.if_then(gm, &in_range, |ctx, gm| {
            let tau = ctx.ld_global_f32(gm, self.bufs.tau, &idx);
            let keep = ctx.splat_f32(1.0 - self.rho);
            let out = ctx.fmul(&tau, &keep);
            ctx.st_global_f32(gm, self.bufs.tau, &idx, &out);
        });
    }
}

/// Atomic deposit: one thread per (padded) tour cell.
pub struct AtomicDepositKernel {
    /// Device buffers.
    pub bufs: ColonyBuffers,
    /// Stage each tour tile in shared memory first (version 1).
    pub use_shared: bool,
}

impl AtomicDepositKernel {
    /// Tiles per tour (tours are padded to a multiple of θ).
    pub fn tiles_per_tour(&self) -> u32 {
        self.bufs.stride / THETA
    }

    /// One block per (ant, tile) pair.
    pub fn config(&self) -> LaunchConfig {
        let grid = self.bufs.m * self.tiles_per_tour();
        let shared = if self.use_shared { (THETA + 1) * 4 } else { 0 };
        LaunchConfig::new(grid, THETA).regs(14).shared(shared)
    }
}

impl Kernel for AtomicDepositKernel {
    fn name(&self) -> &'static str {
        "pheromone_deposit_atomic"
    }

    fn run_block(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem) {
        let tiles = self.tiles_per_tour();
        let stride = self.bufs.stride;
        let n = self.bufs.n;
        ctx.charge(Op::IDivMod, 2); // ant = blockIdx / tiles, tile = blockIdx % tiles
        let ant = ctx.block_idx / tiles;
        let tile = ctx.block_idx % tiles;
        let lane = ctx.thread_idx();

        let tour_base = ant * stride + tile * THETA;
        let base_reg = ctx.splat_u32(tour_base);
        let g_idx = ctx.iadd(&base_reg, &lane);

        // Edge endpoints (c0, c1) for this thread's tour position.
        let (c0, c1) = if self.use_shared {
            let sh = ctx.shared_alloc_u32(THETA as usize + 1);
            let t0 = ctx.ld_global_u32(gm, self.bufs.tours, &g_idx);
            ctx.sh_st_u32(sh, &lane, &t0);
            // Thread 0 fetches the tile boundary (clamped to the padded
            // tour end; padding repeats the start city, so the extra edge
            // is a harmless diagonal).
            let lane0 = ctx.lane_mask(0);
            let boundary = (tour_base + THETA).min(ant * stride + stride - 1);
            let b_reg = ctx.splat_u32(boundary);
            let theta_reg = ctx.splat_u32(THETA);
            ctx.if_then(gm, &lane0, |ctx, gm| {
                let v = ctx.ld_global_u32(gm, self.bufs.tours, &b_reg);
                ctx.sh_st_u32(sh, &theta_reg, &v);
            });
            ctx.sync_threads();
            let c0 = ctx.sh_ld_u32(sh, &lane);
            let one = ctx.splat_u32(1);
            let lp1 = ctx.iadd(&lane, &one);
            let c1 = ctx.sh_ld_u32(sh, &lp1);
            (c0, c1)
        } else {
            let c0 = ctx.ld_global_u32(gm, self.bufs.tours, &g_idx);
            let next = {
                // Clamp the last padded position's neighbour.
                let limit = ctx.splat_u32(ant * stride + stride - 1);
                let one = ctx.splat_u32(1);
                let raw = ctx.iadd(&g_idx, &one);
                ctx.imin(&raw, &limit)
            };
            let c1 = ctx.ld_global_u32(gm, self.bufs.tours, &next);
            (c0, c1)
        };

        // delta = 1 / C_ant (uniform per block; broadcast load + SFU recip).
        let ant_reg = ctx.splat_u32(ant);
        let c_len = ctx.ld_global_f32(gm, self.bufs.lengths, &ant_reg);
        let one_f = ctx.splat_f32(1.0);
        let delta = ctx.fdiv(&one_f, &c_len);

        // Symmetric atomic deposits.
        let n_reg = ctx.splat_u32(n);
        let r0 = ctx.imul(&c0, &n_reg);
        let idx_fwd = ctx.iadd(&r0, &c1);
        ctx.atomic_add_f32(gm, self.bufs.tau, &idx_fwd, &delta);
        let r1 = ctx.imul(&c1, &n_reg);
        let idx_bwd = ctx.iadd(&r1, &c0);
        ctx.atomic_add_f32(gm, self.bufs.tau, &idx_bwd, &delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::tour::task::{RngKind, TabuPlacement, TaskOpts, TaskTourKernel};
    use crate::params::AcoParams;
    use aco_tsp::generator::uniform_random;

    fn build_colony(n: usize, dev: &DeviceSpec) -> (GlobalMem, ColonyBuffers) {
        let inst = uniform_random("ph", n, 1000.0, 3);
        let mut gm = GlobalMem::new();
        let bufs = ColonyBuffers::allocate(&mut gm, &inst, &AcoParams::default().nn(10));
        let ck = crate::gpu::choice::ChoiceKernel { bufs, alpha: 1.0, beta: 2.0 };
        launch(dev, &ck.config(), &ck, &mut gm, SimMode::Full).unwrap();
        bufs.clear_visited(&mut gm);
        let tk = TaskTourKernel {
            bufs,
            opts: TaskOpts {
                use_choice_table: true,
                rng: RngKind::DeviceLcg,
                use_nn_list: true,
                tabu: TabuPlacement::Global,
                texture: false,
                block: 128,
            },
            alpha: 1.0,
            beta: 2.0,
            seed: 1,
            iteration: 0,
        };
        launch(dev, &tk.config(dev), &tk, &mut gm, SimMode::Full).unwrap();
        (gm, bufs)
    }

    #[test]
    fn evaporation_scales_every_cell() {
        let dev = DeviceSpec::tesla_c1060();
        let (mut gm, bufs) = build_colony(30, &dev);
        let before: Vec<f32> = gm.f32(bufs.tau).to_vec();
        let ev = EvaporationKernel { bufs, rho: 0.5 };
        launch(&dev, &ev.config(), &ev, &mut gm, SimMode::Full).unwrap();
        for (a, b) in gm.f32(bufs.tau).iter().zip(before.iter()) {
            assert!((a - b * 0.5).abs() < 1e-7);
        }
    }

    #[test]
    fn atomic_deposit_matches_reference_update() {
        let dev = DeviceSpec::tesla_m2050();
        let (mut gm, bufs) = build_colony(40, &dev);
        let n = 40usize;

        // Host reference: evaporate + deposit from the tours on device.
        let tours = bufs.read_tours(&gm);
        let lengths = bufs.read_lengths(&gm);
        let mut want: Vec<f32> = gm.f32(bufs.tau).iter().map(|&t| t * 0.5).collect();
        for (a, _t) in tours.iter().enumerate() {
            let dep = 1.0 / lengths[a];
            // Padded positions repeat the start, adding diagonal self-edges
            // exactly as the device does: one thread per padded position,
            // the last clamping its successor to the padded tour end.
            let stride = bufs.stride as usize;
            let full: Vec<u32> = {
                let all = gm.u32(bufs.tours);
                all[a * stride..(a + 1) * stride].to_vec()
            };
            for s in 0..stride {
                let (i, j) = (full[s] as usize, full[(s + 1).min(stride - 1)] as usize);
                want[i * n + j] += dep;
                want[j * n + i] += dep;
            }
        }

        let ev = EvaporationKernel { bufs, rho: 0.5 };
        launch(&dev, &ev.config(), &ev, &mut gm, SimMode::Full).unwrap();
        let dk = AtomicDepositKernel { bufs, use_shared: true };
        launch(&dev, &dk.config(), &dk, &mut gm, SimMode::Full).unwrap();

        for (idx, (&got, &w)) in gm.f32(bufs.tau).iter().zip(want.iter()).enumerate() {
            let rel = (got - w).abs() / w.abs().max(1e-12);
            assert!(rel < 1e-3, "cell {idx}: {got} vs {w}");
        }
    }

    #[test]
    fn shared_staging_reduces_global_loads() {
        let dev = DeviceSpec::tesla_c1060();
        let (mut gm, bufs) = build_colony(48, &dev);
        let with = AtomicDepositKernel { bufs, use_shared: true };
        let r_with = launch(&dev, &with.config(), &with, &mut gm, SimMode::Full).unwrap();
        let without = AtomicDepositKernel { bufs, use_shared: false };
        let r_without = launch(&dev, &without.config(), &without, &mut gm, SimMode::Full).unwrap();
        assert!(r_with.stats.ld_transactions < r_without.stats.ld_transactions);
        // Version 1 <= version 2 in time, as in Tables III/IV.
        assert!(r_with.time.total_ms <= r_without.time.total_ms * 1.05);
    }

    #[test]
    fn c1060_emulated_atomics_cost_more_than_fermi() {
        let c1060 = DeviceSpec::tesla_c1060();
        let m2050 = DeviceSpec::tesla_m2050();
        let (mut gm1, bufs1) = build_colony(48, &c1060);
        let (mut gm2, bufs2) = build_colony(48, &m2050);
        let k1 = AtomicDepositKernel { bufs: bufs1, use_shared: true };
        let k2 = AtomicDepositKernel { bufs: bufs2, use_shared: true };
        let r1 = launch(&c1060, &k1.config(), &k1, &mut gm1, SimMode::Full).unwrap();
        let r2 = launch(&m2050, &k2.config(), &k2, &mut gm2, SimMode::Full).unwrap();
        // Table III vs IV: the atomic rows are ~4x faster on the M2050.
        assert!(
            r1.time.total_ms > 2.0 * r2.time.total_ms,
            "CAS emulation must hurt the C1060: {} vs {}",
            r1.time.total_ms,
            r2.time.total_ms
        );
    }
}
