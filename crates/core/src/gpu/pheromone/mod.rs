//! Pheromone-update strategies — the five rows of Tables III and IV.

pub mod atomic;
pub mod scatter;

use aco_simt::prelude::*;
use aco_simt::SimtError;

pub use atomic::{AtomicDepositKernel, EvaporationKernel};
pub use scatter::{ScatterGatherKernel, ScatterMode};

use super::buffers::ColonyBuffers;

/// One row of Tables III/IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PheromoneStrategy {
    /// 1. Atomic instructions + shared-memory staging.
    AtomicShared,
    /// 2. Atomic instructions.
    Atomic,
    /// 3. Instruction & thread reduction (tiled, half threads).
    Reduction,
    /// 4. Scatter to gather + tiling.
    ScatterTiled,
    /// 5. Scatter to gather.
    Scatter,
}

impl PheromoneStrategy {
    /// All rows, in table order.
    pub const ALL: [PheromoneStrategy; 5] = [
        PheromoneStrategy::AtomicShared,
        PheromoneStrategy::Atomic,
        PheromoneStrategy::Reduction,
        PheromoneStrategy::ScatterTiled,
        PheromoneStrategy::Scatter,
    ];

    /// The row label as printed in the paper.
    pub fn paper_row(self) -> &'static str {
        match self {
            PheromoneStrategy::AtomicShared => "1. Atomic Ins. + Shared Memory",
            PheromoneStrategy::Atomic => "2. Atomic Ins.",
            PheromoneStrategy::Reduction => "3. Instruction & Thread Reduction",
            PheromoneStrategy::ScatterTiled => "4. Scatter to Gather + Tilling",
            PheromoneStrategy::Scatter => "5. Scatter to Gather",
        }
    }
}

/// Outcome of one pheromone update.
#[derive(Debug, Clone)]
pub struct PheromoneRun {
    /// Total modeled time (evaporation + deposit for the atomic rows; the
    /// single fused launch otherwise).
    pub time: KernelTime,
    /// Merged counters of the launches involved.
    pub stats: KernelStats,
}

/// Run one Tables III/IV row on `dev`.
pub fn run_pheromone(
    dev: &DeviceSpec,
    gm: &mut GlobalMem,
    bufs: ColonyBuffers,
    strategy: PheromoneStrategy,
    rho: f32,
    mode: SimMode,
) -> Result<PheromoneRun, SimtError> {
    run_pheromone_threads(dev, gm, bufs, strategy, rho, mode, 1)
}

/// [`run_pheromone`] with the simulator's blocks executed across up to
/// `threads` host threads (results are bit-identical for any count; see
/// [`aco_simt::launch_threads`]).
pub fn run_pheromone_threads(
    dev: &DeviceSpec,
    gm: &mut GlobalMem,
    bufs: ColonyBuffers,
    strategy: PheromoneStrategy,
    rho: f32,
    mode: SimMode,
    threads: usize,
) -> Result<PheromoneRun, SimtError> {
    match strategy {
        PheromoneStrategy::AtomicShared | PheromoneStrategy::Atomic => {
            let ev = EvaporationKernel { bufs, rho };
            let r1 = launch_threads(dev, &ev.config(), &ev, gm, mode, threads)?;
            let dep = AtomicDepositKernel {
                bufs,
                use_shared: strategy == PheromoneStrategy::AtomicShared,
            };
            let r2 = launch_threads(dev, &dep.config(), &dep, gm, mode, threads)?;
            let mut stats = r1.stats;
            stats.merge(&r2.stats);
            Ok(PheromoneRun { time: r1.time.then(&r2.time), stats })
        }
        PheromoneStrategy::Reduction
        | PheromoneStrategy::ScatterTiled
        | PheromoneStrategy::Scatter => {
            let k = ScatterGatherKernel {
                bufs,
                rho,
                mode: match strategy {
                    PheromoneStrategy::Reduction => ScatterMode::TiledReduced,
                    PheromoneStrategy::ScatterTiled => ScatterMode::Tiled,
                    _ => ScatterMode::Plain,
                },
            };
            let r = launch_threads(dev, &k.config(), &k, gm, mode, threads)?;
            Ok(PheromoneRun { time: r.time, stats: r.stats })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::choice::ChoiceKernel;
    use crate::gpu::tour::{run_tour, TourStrategy};
    use crate::params::AcoParams;
    use aco_tsp::generator::uniform_random;

    #[test]
    fn table_iii_row_ordering_holds() {
        // Paper: atomics fastest, plain scatter slowest, tiling in between.
        let dev = DeviceSpec::tesla_c1060();
        let inst = uniform_random("ord", 32, 800.0, 5);
        let mut gm = GlobalMem::new();
        let bufs = ColonyBuffers::allocate(&mut gm, &inst, &AcoParams::default().nn(8));
        let ck = ChoiceKernel { bufs, alpha: 1.0, beta: 2.0 };
        launch(&dev, &ck.config(), &ck, &mut gm, SimMode::Full).unwrap();
        run_tour(&dev, &mut gm, bufs, TourStrategy::NNList, 1.0, 2.0, 1, 0, SimMode::Full).unwrap();

        let mut ms = Vec::new();
        for s in PheromoneStrategy::ALL {
            let r = run_pheromone(&dev, &mut gm, bufs, s, 0.5, SimMode::Full).unwrap();
            ms.push((s, r.time.total_ms));
        }
        let t = |s: PheromoneStrategy| ms.iter().find(|&&(x, _)| x == s).expect("ran").1;
        assert!(t(PheromoneStrategy::AtomicShared) <= t(PheromoneStrategy::Atomic) * 1.05);
        assert!(t(PheromoneStrategy::Atomic) < t(PheromoneStrategy::Reduction));
        assert!(t(PheromoneStrategy::Reduction) < t(PheromoneStrategy::ScatterTiled));
        assert!(t(PheromoneStrategy::ScatterTiled) < t(PheromoneStrategy::Scatter));
    }

    #[test]
    fn labels_match_tables() {
        assert_eq!(PheromoneStrategy::ALL.len(), 5);
        assert_eq!(PheromoneStrategy::Scatter.paper_row(), "5. Scatter to Gather");
    }
}
