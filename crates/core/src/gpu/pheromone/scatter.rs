//! Scatter-to-gather pheromone update (Tables III/IV, versions 3–5;
//! Figure 3).
//!
//! The atomic-free family: one thread per pheromone cell *gathers* its own
//! deposits by scanning every ant's tour and checking whether its edge
//! appears. The paper derives the access counts this reproduces:
//!
//! * version 5 (plain): each of the `n²` threads performs `2·n²` global
//!   loads — `l = 2·n⁴` total ("drastically increasing the number of
//!   accesses to device memory");
//! * version 4 (+ tiling): tour tiles are staged in shared memory
//!   cooperatively, cutting global loads to `γ = 2·n⁴/θ`;
//! * version 3 (+ instruction & thread reduction): the symmetric TSP needs
//!   only the upper triangle — half the threads, `ρ = n⁴/θ`, each thread
//!   writing both `(i,j)` and `(j,i)`.
//!
//! Evaporation is fused into the same kernel (each thread owns its cell).

use aco_simt::prelude::*;

use crate::gpu::buffers::{ColonyBuffers, THETA};

/// Which scatter-to-gather row this launch models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScatterMode {
    /// Version 5: direct global scans.
    Plain,
    /// Version 4: tour tiles staged in shared memory.
    Tiled,
    /// Version 3: tiled + upper-triangle threads writing both symmetric
    /// cells.
    TiledReduced,
}

/// The scatter-to-gather kernel (fused evaporation + gather deposit).
pub struct ScatterGatherKernel {
    /// Device buffers.
    pub bufs: ColonyBuffers,
    /// Evaporation rate ρ.
    pub rho: f32,
    /// Row selector.
    pub mode: ScatterMode,
}

impl ScatterGatherKernel {
    /// Cells owned by threads: all `n²`, or the upper triangle
    /// (including the diagonal) for the reduced version.
    pub fn cells(&self) -> u32 {
        let n = self.bufs.n;
        match self.mode {
            ScatterMode::Plain | ScatterMode::Tiled => n * n,
            ScatterMode::TiledReduced => n * (n + 1) / 2,
        }
    }

    /// One thread per owned cell, θ-wide blocks.
    pub fn config(&self) -> LaunchConfig {
        let shared = match self.mode {
            ScatterMode::Plain => 0,
            _ => (THETA + 1) * 4,
        };
        LaunchConfig::new(self.cells().div_ceil(THETA), THETA).regs(16).shared(shared)
    }

    /// Map a linear upper-triangle index to `(i, j)`.
    ///
    /// The device pays one `sqrtf` (SFU) plus a handful of integer ops for
    /// the closed-form row computation; those are charged explicitly. The
    /// functional mapping is computed with an exact integer scan so row
    /// boundaries never suffer float rounding. Cities fit in 16 bits
    /// (TSPLIB tops out far below 65 536), so the pair is packed.
    fn triangle_coords(&self, ctx: &mut BlockCtx, cell: &Reg<u32>) -> (Reg<u32>, Reg<u32>) {
        ctx.charge(Op::Sfu, 1); // sqrtf of the discriminant
        ctx.charge(Op::IAlu, 6); // row/column arithmetic
        let n32 = self.bufs.n;
        let ij = ctx.reg_from_fn_u32(|lane| {
            let k = cell.lane(lane);
            let (mut row, mut row_start) = (0u32, 0u32);
            loop {
                let row_len = n32 - row;
                if k < row_start + row_len {
                    break;
                }
                row_start += row_len;
                row += 1;
            }
            let col = row + (k - row_start);
            (row << 16) | col
        });
        let sixteen = ctx.splat_u32(16);
        let mask = ctx.splat_u32(0xFFFF);
        let row = ctx.ishr(&ij, &sixteen);
        let col = ctx.iand(&ij, &mask);
        (row, col)
    }

    /// Accumulate this cell's deposits by scanning all tours directly from
    /// global memory (version 5).
    fn gather_plain(
        &self,
        ctx: &mut BlockCtx,
        gm: &mut GlobalMem,
        i: &Reg<u32>,
        j: &Reg<u32>,
    ) -> Reg<f32> {
        let n = self.bufs.n;
        let m = self.bufs.m;
        let stride = self.bufs.stride;
        let mut acc = ctx.splat_f32(0.0);
        for k in 0..m {
            let ant_reg = ctx.splat_u32(k);
            let c_len = ctx.ld_global_f32(gm, self.bufs.lengths, &ant_reg);
            let one = ctx.splat_f32(1.0);
            let delta = ctx.fdiv(&one, &c_len);
            for s in 0..n {
                let i0 = ctx.splat_u32(k * stride + s);
                let i1 = ctx.splat_u32(k * stride + s + 1);
                let c0 = ctx.ld_global_u32(gm, self.bufs.tours, &i0);
                let c1 = ctx.ld_global_u32(gm, self.bufs.tours, &i1);
                acc = self.match_accumulate(ctx, &acc, &c0, &c1, i, j, &delta);
            }
        }
        acc
    }

    /// Accumulate deposits with tour tiles staged in shared memory
    /// (versions 3–4).
    fn gather_tiled(
        &self,
        ctx: &mut BlockCtx,
        gm: &mut GlobalMem,
        i: &Reg<u32>,
        j: &Reg<u32>,
        sh: ShPtr<u32>,
    ) -> Reg<f32> {
        let n = self.bufs.n;
        let m = self.bufs.m;
        let stride = self.bufs.stride;
        let lane = ctx.thread_idx();
        let mut acc = ctx.splat_f32(0.0);
        for k in 0..m {
            let ant_reg = ctx.splat_u32(k);
            let c_len = ctx.ld_global_f32(gm, self.bufs.lengths, &ant_reg);
            let one = ctx.splat_f32(1.0);
            let delta = ctx.fdiv(&one, &c_len);
            let tiles = stride / THETA;
            for tile in 0..tiles {
                let base = k * stride + tile * THETA;
                // Cooperative, coalesced tile load.
                let base_reg = ctx.splat_u32(base);
                let g = ctx.iadd(&base_reg, &lane);
                let v = ctx.ld_global_u32(gm, self.bufs.tours, &g);
                ctx.sh_st_u32(sh, &lane, &v);
                let lane0 = ctx.lane_mask(0);
                let boundary = (base + THETA).min(k * stride + stride - 1);
                let b_reg = ctx.splat_u32(boundary);
                let theta_reg = ctx.splat_u32(THETA);
                ctx.if_then(gm, &lane0, |ctx, gm| {
                    let bv = ctx.ld_global_u32(gm, self.bufs.tours, &b_reg);
                    ctx.sh_st_u32(sh, &theta_reg, &bv);
                });
                ctx.sync_threads();
                // Scan the staged tile (broadcast shared reads).
                let upto = if tile == tiles - 1 { n - tile * THETA } else { THETA };
                for s in 0..upto {
                    let c0s = ctx.sh_ld_u32_uniform(sh, s);
                    let c1s = ctx.sh_ld_u32_uniform(sh, s + 1);
                    let c0 = ctx.splat_u32(c0s);
                    let c1 = ctx.splat_u32(c1s);
                    acc = self.match_accumulate(ctx, &acc, &c0, &c1, i, j, &delta);
                }
                ctx.sync_threads();
            }
        }
        acc
    }

    /// `acc += delta` when the edge `(c0, c1)` matches this cell in either
    /// direction — branch-free, as the device code would be.
    #[allow(clippy::too_many_arguments)]
    fn match_accumulate(
        &self,
        ctx: &mut BlockCtx,
        acc: &Reg<f32>,
        c0: &Reg<u32>,
        c1: &Reg<u32>,
        i: &Reg<u32>,
        j: &Reg<u32>,
        delta: &Reg<f32>,
    ) -> Reg<f32> {
        let m1 = ctx.ueq(c0, i);
        let m2 = ctx.ueq(c1, j);
        let m3 = ctx.ueq(c0, j);
        let m4 = ctx.ueq(c1, i);
        let fwd = m1.and(&m2);
        let bwd = m3.and(&m4);
        let hit = fwd.or(&bwd);
        ctx.charge(Op::IAlu, 3); // the and/and/or predicate ops
        let zero = ctx.splat_f32(0.0);
        let dd = ctx.select_f32(&hit, delta, &zero);
        ctx.fadd(acc, &dd)
    }
}

impl Kernel for ScatterGatherKernel {
    fn name(&self) -> &'static str {
        match self.mode {
            ScatterMode::Plain => "pheromone_scatter_gather",
            ScatterMode::Tiled => "pheromone_scatter_gather_tiled",
            ScatterMode::TiledReduced => "pheromone_reduction",
        }
    }

    fn run_block(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem) {
        let n = self.bufs.n;
        let cell_raw = ctx.global_thread_idx();
        let limit = ctx.splat_u32(self.cells());
        let in_range = ctx.ult(&cell_raw, &limit);
        // Out-of-range lanes of the last block clamp to a valid cell and
        // keep running: the tiled variants need *every* lane of the block
        // for the cooperative tile loads and barriers (an early exit would
        // desynchronise `__syncthreads` in real CUDA too). Only the final
        // read-modify-write is predicated.
        let last = ctx.splat_u32(self.cells() - 1);
        let cell = ctx.imin(&cell_raw, &last);

        let sh = match self.mode {
            ScatterMode::Plain => None,
            _ => Some(ctx.shared_alloc_u32(THETA as usize + 1)),
        };

        // Cell coordinates.
        let (i, j) = match self.mode {
            ScatterMode::TiledReduced => self.triangle_coords(ctx, &cell),
            _ => {
                let n_reg = ctx.splat_u32(n);
                ctx.charge(Op::IDivMod, 2);
                let i = ctx.idiv(&cell, &n_reg);
                let j = ctx.imod(&cell, &n_reg);
                (i, j)
            }
        };

        let acc = match self.mode {
            ScatterMode::Plain => self.gather_plain(ctx, gm, &i, &j),
            _ => self.gather_tiled(ctx, gm, &i, &j, sh.expect("allocated above")),
        };

        ctx.if_then(gm, &in_range, |ctx, gm| {
            // Fused evaporation + deposit: tau = tau*(1-rho) + acc.
            let n_reg = ctx.splat_u32(n);
            let keep = ctx.splat_f32(1.0 - self.rho);
            let ri = ctx.imul(&i, &n_reg);
            let idx_fwd = ctx.iadd(&ri, &j);
            let tau = ctx.ld_global_f32(gm, self.bufs.tau, &idx_fwd);
            let out = ctx.fma(&tau, &keep, &acc);
            ctx.st_global_f32(gm, self.bufs.tau, &idx_fwd, &out);

            if self.mode == ScatterMode::TiledReduced {
                // Mirror cell (skip the diagonal to avoid double-writing).
                let off_diag = ctx.une(&i, &j);
                ctx.if_then(gm, &off_diag, |ctx, gm| {
                    let rj = ctx.imul(&j, &n_reg);
                    let idx_bwd = ctx.iadd(&rj, &i);
                    let tau_b = ctx.ld_global_f32(gm, self.bufs.tau, &idx_bwd);
                    let out_b = ctx.fma(&tau_b, &keep, &acc);
                    ctx.st_global_f32(gm, self.bufs.tau, &idx_bwd, &out_b);
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::pheromone::atomic::EvaporationKernel;
    use crate::gpu::tour::task::{RngKind, TabuPlacement, TaskOpts, TaskTourKernel};
    use crate::params::AcoParams;
    use aco_tsp::generator::uniform_random;

    fn build_colony(n: usize, dev: &DeviceSpec) -> (GlobalMem, ColonyBuffers) {
        let inst = uniform_random("sg", n, 1000.0, 17);
        let mut gm = GlobalMem::new();
        let bufs = ColonyBuffers::allocate(&mut gm, &inst, &AcoParams::default().nn(8));
        let ck = crate::gpu::choice::ChoiceKernel { bufs, alpha: 1.0, beta: 2.0 };
        launch(dev, &ck.config(), &ck, &mut gm, SimMode::Full).unwrap();
        bufs.clear_visited(&mut gm);
        let tk = TaskTourKernel {
            bufs,
            opts: TaskOpts {
                use_choice_table: true,
                rng: RngKind::DeviceLcg,
                use_nn_list: true,
                tabu: TabuPlacement::Global,
                texture: false,
                block: 128,
            },
            alpha: 1.0,
            beta: 2.0,
            seed: 2,
            iteration: 0,
        };
        launch(dev, &tk.config(dev), &tk, &mut gm, SimMode::Full).unwrap();
        (gm, bufs)
    }

    /// Host reference: evaporate + deposit over the real (unpadded) edges.
    fn reference_update(gm: &GlobalMem, bufs: &ColonyBuffers, rho: f32) -> Vec<f32> {
        let n = bufs.n as usize;
        let tours = bufs.read_tours(gm);
        let lengths = bufs.read_lengths(gm);
        let mut tau: Vec<f32> = gm.f32(bufs.tau).iter().map(|&t| t * (1.0 - rho)).collect();
        for (a, t) in tours.iter().enumerate() {
            let dep = 1.0 / lengths[a];
            for s in 0..n {
                let (i, j) = (t[s] as usize, t[s + 1] as usize);
                tau[i * n + j] += dep;
                tau[j * n + i] += dep;
            }
        }
        tau
    }

    fn assert_tau_close(gm: &GlobalMem, bufs: &ColonyBuffers, want: &[f32], tol: f32) {
        for (idx, (&got, &w)) in gm.f32(bufs.tau).iter().zip(want.iter()).enumerate() {
            let rel = (got - w).abs() / w.abs().max(1e-12);
            assert!(rel < tol, "cell {idx}: {got} vs {w}");
        }
    }

    #[test]
    fn plain_scatter_matches_reference() {
        let dev = DeviceSpec::tesla_c1060();
        let (mut gm, bufs) = build_colony(24, &dev);
        let want = reference_update(&gm, &bufs, 0.5);
        let k = ScatterGatherKernel { bufs, rho: 0.5, mode: ScatterMode::Plain };
        launch(&dev, &k.config(), &k, &mut gm, SimMode::Full).unwrap();
        assert_tau_close(&gm, &bufs, &want, 2e-3);
    }

    #[test]
    fn tiled_scatter_matches_reference() {
        let dev = DeviceSpec::tesla_c1060();
        let (mut gm, bufs) = build_colony(24, &dev);
        let want = reference_update(&gm, &bufs, 0.5);
        let k = ScatterGatherKernel { bufs, rho: 0.5, mode: ScatterMode::Tiled };
        launch(&dev, &k.config(), &k, &mut gm, SimMode::Full).unwrap();
        assert_tau_close(&gm, &bufs, &want, 2e-3);
    }

    #[test]
    fn reduced_scatter_matches_reference() {
        let dev = DeviceSpec::tesla_m2050();
        let (mut gm, bufs) = build_colony(24, &dev);
        let want = reference_update(&gm, &bufs, 0.5);
        let k = ScatterGatherKernel { bufs, rho: 0.5, mode: ScatterMode::TiledReduced };
        launch(&dev, &k.config(), &k, &mut gm, SimMode::Full).unwrap();
        assert_tau_close(&gm, &bufs, &want, 2e-3);
    }

    #[test]
    fn access_count_ordering_matches_paper() {
        // l = 2n^4 (plain)  >  gamma = 2n^4/theta (tiled)  >  rho = n^4/theta (reduced)
        // (n = 64: large enough that block-granular tile staging shows the
        // asymptotic half-threads saving, small enough to simulate fully.)
        let dev = DeviceSpec::tesla_c1060();
        let (mut gm, bufs) = build_colony(64, &dev);
        let run_mode = |gm: &mut GlobalMem, mode| {
            let k = ScatterGatherKernel { bufs, rho: 0.5, mode };
            launch(&dev, &k.config(), &k, gm, SimMode::Full).unwrap()
        };
        let plain = run_mode(&mut gm, ScatterMode::Plain);
        let tiled = run_mode(&mut gm, ScatterMode::Tiled);
        let reduced = run_mode(&mut gm, ScatterMode::TiledReduced);
        assert!(plain.stats.ld_transactions > 5.0 * tiled.stats.ld_transactions);
        // Half the cells means half the blocks asymptotically; at n = 32
        // the block counts only drop 4 -> 3 (whole blocks stage tours), so
        // require the ratio to exceed that floor.
        assert!(tiled.stats.ld_transactions > 1.2 * reduced.stats.ld_transactions);
        assert!(plain.time.total_ms > tiled.time.total_ms);
        assert!(tiled.time.total_ms > reduced.time.total_ms);
    }

    #[test]
    fn scatter_is_slower_than_atomics_as_paper_concludes() {
        // "those techniques are even more costly than applying atomic
        // operations directly" (Section VI).
        let dev = DeviceSpec::tesla_c1060();
        let (mut gm, bufs) = build_colony(32, &dev);
        let ev = EvaporationKernel { bufs, rho: 0.5 };
        let r_ev = launch(&dev, &ev.config(), &ev, &mut gm, SimMode::Full).unwrap();
        let at = crate::gpu::pheromone::atomic::AtomicDepositKernel { bufs, use_shared: true };
        let r_at = launch(&dev, &at.config(), &at, &mut gm, SimMode::Full).unwrap();
        let atomic_total = r_ev.time.total_ms + r_at.time.total_ms;
        let sg = ScatterGatherKernel { bufs, rho: 0.5, mode: ScatterMode::Plain };
        let r_sg = launch(&dev, &sg.config(), &sg, &mut gm, SimMode::Full).unwrap();
        assert!(
            r_sg.time.total_ms > 3.0 * atomic_total,
            "scatter {} should dwarf atomics {}",
            r_sg.time.total_ms,
            atomic_total
        );
    }
}
