//! Task-based tour construction (Table II, versions 1–6).
//!
//! One CUDA thread per ant — the "traditional" approach the paper
//! critiques. The kernel is parameterised so each Table II row is a
//! configuration of the same code path:
//!
//! | row | configuration |
//! |-----|----------------|
//! | 1   | recompute `tau^alpha * eta^beta` per step, CURAND-style RNG, tabu in global memory |
//! | 2   | + precomputed choice table (the Choice kernel) |
//! | 3   | + device-function LCG instead of CURAND |
//! | 4   | + nearest-neighbour candidate list |
//! | 5   | + tabu list in shared memory (per-city ints when they fit, bit-packed otherwise — the paper's C1060 caveat) |
//! | 6   | + choice loads through the texture cache |
//!
//! The structure matches ACOTSP's construction loop exactly: probability
//! pass, roulette scan (a data-dependent `loop_while` — the warp
//! divergence the paper blames), and the best-choice fallback when a
//! candidate list is exhausted.

use aco_simt::prelude::*;
use aco_simt::rng::PmRng;

use crate::gpu::buffers::ColonyBuffers;
use crate::gpu::choice::ETA_ZERO_DIST;

/// RNG source for the construction kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RngKind {
    /// Library-style generator with 48-byte state in global memory.
    CurandLike,
    /// Park–Miller LCG in registers (the sequential code's generator).
    DeviceLcg,
}

/// Where the tabu list lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TabuPlacement {
    /// `m x n` flags in global memory.
    Global,
    /// Per-block shared memory; ints when they fit, bits otherwise.
    Shared,
}

/// Configuration of the task kernel (one Table II row).
#[derive(Debug, Clone, Copy)]
pub struct TaskOpts {
    /// Load `choice_info` instead of recomputing `tau^a * eta^b` per step.
    pub use_choice_table: bool,
    /// RNG source.
    pub rng: RngKind,
    /// Restrict the probabilistic choice to the candidate list.
    pub use_nn_list: bool,
    /// Tabu-list placement.
    pub tabu: TabuPlacement,
    /// Route read-only choice loads through the texture cache.
    pub texture: bool,
    /// Ants per thread block.
    pub block: u32,
}

/// How the shared tabu list is actually laid out on a given device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TabuLayout {
    Global,
    /// One `u32` per city per ant in shared memory.
    SharedInt,
    /// Bit-packed: `ceil(n/32)` words per ant (paper: "32-bit registers
    /// may be used on a bitwise basis"; extra index arithmetic per access).
    SharedBits,
}

/// The task-parallel construction kernel.
pub struct TaskTourKernel {
    /// Device buffers.
    pub bufs: ColonyBuffers,
    /// Row configuration.
    pub opts: TaskOpts,
    /// Pheromone weight (only used when recomputing inline).
    pub alpha: f32,
    /// Heuristic weight.
    pub beta: f32,
    /// Colony seed.
    pub seed: u64,
    /// Iteration number (decorrelates per-iteration streams).
    pub iteration: u64,
}

enum TabuState {
    Global,
    SharedInt(ShPtr<u32>),
    SharedBits(ShPtr<u32>),
}

impl TaskTourKernel {
    fn layout(&self, dev: &DeviceSpec) -> TabuLayout {
        if self.opts.tabu == TabuPlacement::Global {
            return TabuLayout::Global;
        }
        let n = self.bufs.n;
        let block = self.opts.block;
        if block * n * 4 <= dev.shared_mem_per_sm {
            TabuLayout::SharedInt
        } else if block * n.div_ceil(32) * 4 <= dev.shared_mem_per_sm {
            TabuLayout::SharedBits
        } else {
            TabuLayout::Global
        }
    }

    /// Shared bytes the block will allocate on `dev`.
    fn shared_bytes(&self, dev: &DeviceSpec) -> u32 {
        match self.layout(dev) {
            TabuLayout::Global => 0,
            TabuLayout::SharedInt => self.opts.block * self.bufs.n * 4,
            TabuLayout::SharedBits => self.opts.block * self.bufs.n.div_ceil(32) * 4,
        }
    }

    /// Launch geometry for this row on `dev`.
    pub fn config(&self, dev: &DeviceSpec) -> LaunchConfig {
        LaunchConfig::new(self.bufs.m.div_ceil(self.opts.block), self.opts.block)
            .regs(24)
            .shared(self.shared_bytes(dev))
    }

    fn draw(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem, lcg: &mut Reg<u32>) -> Reg<f32> {
        match self.opts.rng {
            RngKind::DeviceLcg => ctx.lcg_next_f32(lcg),
            RngKind::CurandLike => ctx.curand_next_f32(gm, self.bufs.curand),
        }
    }

    /// `choice_info[cidx]`, either loaded (optionally via texture) or
    /// recomputed from `tau` and `dist` (baseline row 1).
    fn choice_value(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem, cidx: &Reg<u32>) -> Reg<f32> {
        if self.opts.use_choice_table {
            if self.opts.texture {
                ctx.ld_tex_f32(gm, self.bufs.choice, cidx)
            } else {
                ctx.ld_global_f32(gm, self.bufs.choice, cidx)
            }
        } else {
            let tau = ctx.ld_global_f32(gm, self.bufs.tau, cidx);
            let d = ctx.ld_global_f32(gm, self.bufs.dist, cidx);
            let zero = ctx.splat_f32(0.0);
            let dz = ctx.fle(&d, &zero);
            let one = ctx.splat_f32(1.0);
            let eta_raw = ctx.fdiv(&one, &d);
            let clamp = ctx.splat_f32(ETA_ZERO_DIST);
            let eta = ctx.select_f32(&dz, &clamp, &eta_raw);
            let a = ctx.splat_f32(self.alpha);
            let b = ctx.splat_f32(self.beta);
            // The baseline port calls libm `pow()` on doubles per step
            // (it reuses the sequential code's arithmetic); GT200 runs
            // double precision at 1/8 rate, so each call costs far more
            // than the single-precision `__powf` of the Choice kernel.
            ctx.charge(Op::Sfu, 14);
            let ta = ctx.fpow(&tau, &a);
            let eb = ctx.fpow(&eta, &b);
            ctx.fmul(&ta, &eb)
        }
    }

    /// 1.0 for unvisited cities, 0.0 for visited.
    fn tabu_check(
        &self,
        ctx: &mut BlockCtx,
        gm: &mut GlobalMem,
        tabu: &TabuState,
        tid_global: &Reg<u32>,
        tid_local: &Reg<u32>,
        city: &Reg<u32>,
    ) -> Reg<f32> {
        let n = ctx.splat_u32(self.bufs.n);
        let flag = match tabu {
            TabuState::Global => {
                let row = ctx.imul(tid_global, &n);
                let idx = ctx.iadd(&row, city);
                ctx.ld_global_u32(gm, self.bufs.visited, &idx)
            }
            TabuState::SharedInt(arr) => {
                let row = ctx.imul(tid_local, &n);
                let idx = ctx.iadd(&row, city);
                ctx.sh_ld_u32(*arr, &idx)
            }
            TabuState::SharedBits(arr) => {
                let words = ctx.splat_u32(self.bufs.n.div_ceil(32));
                let five = ctx.splat_u32(5);
                let word = ctx.ishr(city, &five);
                let row = ctx.imul(tid_local, &words);
                let idx = ctx.iadd(&row, &word);
                let w = ctx.sh_ld_u32(*arr, &idx);
                let thirty_one = ctx.splat_u32(31);
                let bit = ctx.iand(city, &thirty_one);
                let shifted = ctx.ishr(&w, &bit);
                let one = ctx.splat_u32(1);
                ctx.iand(&shifted, &one)
            }
        };
        let fone = ctx.splat_f32(1.0);
        let f = ctx.u2f(&flag);
        ctx.fsub(&fone, &f)
    }

    fn tabu_set(
        &self,
        ctx: &mut BlockCtx,
        gm: &mut GlobalMem,
        tabu: &TabuState,
        tid_global: &Reg<u32>,
        tid_local: &Reg<u32>,
        city: &Reg<u32>,
    ) {
        let n = ctx.splat_u32(self.bufs.n);
        match tabu {
            TabuState::Global => {
                let row = ctx.imul(tid_global, &n);
                let idx = ctx.iadd(&row, city);
                let one = ctx.splat_u32(1);
                ctx.st_global_u32(gm, self.bufs.visited, &idx, &one);
            }
            TabuState::SharedInt(arr) => {
                let row = ctx.imul(tid_local, &n);
                let idx = ctx.iadd(&row, city);
                let one = ctx.splat_u32(1);
                ctx.sh_st_u32(*arr, &idx, &one);
            }
            TabuState::SharedBits(arr) => {
                let words = ctx.splat_u32(self.bufs.n.div_ceil(32));
                let five = ctx.splat_u32(5);
                let word = ctx.ishr(city, &five);
                let row = ctx.imul(tid_local, &words);
                let idx = ctx.iadd(&row, &word);
                let w = ctx.sh_ld_u32(*arr, &idx);
                let thirty_one = ctx.splat_u32(31);
                let bit = ctx.iand(city, &thirty_one);
                let one = ctx.splat_u32(1);
                let mask_bit = ctx.ishl(&one, &bit);
                let neww = ctx.ior(&w, &mask_bit);
                ctx.sh_st_u32(*arr, &idx, &neww);
            }
        }
    }

    /// Deterministic best unvisited city by choice value (the fallback of
    /// the candidate-list rule, and the rounding guard of the full rule).
    fn argmax_unvisited(
        &self,
        ctx: &mut BlockCtx,
        gm: &mut GlobalMem,
        tabu: &TabuState,
        tid_global: &Reg<u32>,
        tid_local: &Reg<u32>,
        cur: &Reg<u32>,
    ) -> Reg<u32> {
        let n = self.bufs.n;
        let nreg = ctx.splat_u32(n);
        let one = ctx.splat_f32(1.0);
        let curn = ctx.imul(cur, &nreg);
        let mut best_v = ctx.splat_f32(-1.0);
        let mut best_j = ctx.splat_u32(0);
        for j in 0..n {
            let jr = ctx.splat_u32(j);
            let cidx = ctx.iadd(&curn, &jr);
            let v = self.choice_value(ctx, gm, &cidx);
            let unvis = self.tabu_check(ctx, gm, tabu, tid_global, tid_local, &jr);
            // score = (choice + 1) * unvis: any unvisited city strictly
            // beats every visited one even when choice values reach 0.
            let vp1 = ctx.fadd(&v, &one);
            let v = ctx.fmul(&vp1, &unvis);
            let better = ctx.fgt(&v, &best_v);
            best_v = ctx.select_f32(&better, &v, &best_v);
            best_j = ctx.select_u32(&better, &jr, &best_j);
        }
        best_j
    }

    /// Full random-proportional step (rows 1–3): probability pass into the
    /// global scratch array, then the divergent roulette scan.
    #[allow(clippy::too_many_arguments)]
    fn select_full(
        &self,
        ctx: &mut BlockCtx,
        gm: &mut GlobalMem,
        tabu: &TabuState,
        tid_global: &Reg<u32>,
        tid_local: &Reg<u32>,
        cur: &Reg<u32>,
        lcg: &mut Reg<u32>,
    ) -> Reg<u32> {
        let n = self.bufs.n;
        let nreg = ctx.splat_u32(n);
        let curn = ctx.imul(cur, &nreg);
        let prob_base = ctx.imul(tid_global, &nreg);

        let mut sum = ctx.splat_f32(0.0);
        for j in 0..n {
            let jr = ctx.splat_u32(j);
            let cidx = ctx.iadd(&curn, &jr);
            let raw = self.choice_value(ctx, gm, &cidx);
            let unvis = self.tabu_check(ctx, gm, tabu, tid_global, tid_local, &jr);
            let p = ctx.fmul(&raw, &unvis);
            let pidx = ctx.iadd(&prob_base, &jr);
            ctx.st_global_f32(gm, self.bufs.prob, &pidx, &p);
            sum = ctx.fadd(&sum, &p);
        }

        let r = self.draw(ctx, gm, lcg);
        let target = ctx.fmul(&r, &sum);

        // Roulette scan: data-dependent trip count per lane = warp
        // divergence ("this operation presents many warp divergences,
        // leading to serialisation", Section IV-A).
        let mut j = ctx.splat_u32(0);
        let mut cum = ctx.ld_global_f32(gm, self.bufs.prob, &prob_base);
        let one = ctx.splat_u32(1);
        let nm1 = ctx.splat_u32(n - 1);
        ctx.loop_while(gm, |ctx, gm| {
            let below = ctx.flt(&cum, &target);
            let more = ctx.ult(&j, &nm1);
            let cont = below.and(&more);
            ctx.if_then(gm, &cont.clone(), |ctx, gm| {
                let jn = ctx.iadd(&j, &one);
                ctx.assign_u32(&mut j, &jn);
                let pidx = ctx.iadd(&prob_base, &j);
                let p = ctx.ld_global_f32(gm, self.bufs.prob, &pidx);
                let cn = ctx.fadd(&cum, &p);
                ctx.assign_f32(&mut cum, &cn);
            });
            cont
        });

        // Rounding guard: a lane can land on a visited (zero-probability)
        // city; fall back to the deterministic best.
        let unvis = self.tabu_check(ctx, gm, tabu, tid_global, tid_local, &j);
        let zero = ctx.splat_f32(0.0);
        let bad = ctx.fle(&unvis, &zero);
        let mut next = j;
        ctx.if_then(gm, &bad, |ctx, gm| {
            let fixed = self.argmax_unvisited(ctx, gm, tabu, tid_global, tid_local, cur);
            ctx.assign_u32(&mut next, &fixed);
        });
        next
    }

    /// Candidate-list step (rows 4–6): branch-free roulette over the `nn`
    /// candidates, divergent full-scan fallback when all are visited.
    #[allow(clippy::too_many_arguments)]
    fn select_nn(
        &self,
        ctx: &mut BlockCtx,
        gm: &mut GlobalMem,
        tabu: &TabuState,
        tid_global: &Reg<u32>,
        tid_local: &Reg<u32>,
        cur: &Reg<u32>,
        lcg: &mut Reg<u32>,
    ) -> Reg<u32> {
        let nn = self.bufs.nn;
        let nreg = ctx.splat_u32(self.bufs.n);
        let nnreg = ctx.splat_u32(nn);
        let curn = ctx.imul(cur, &nreg);
        let curnn = ctx.imul(cur, &nnreg);

        let mut ps: Vec<Reg<f32>> = Vec::with_capacity(nn as usize);
        let mut cands: Vec<Reg<u32>> = Vec::with_capacity(nn as usize);
        let mut sum = ctx.splat_f32(0.0);
        for c in 0..nn {
            let cr = ctx.splat_u32(c);
            let lidx = ctx.iadd(&curnn, &cr);
            let cand = ctx.ld_global_u32(gm, self.bufs.nn_list, &lidx);
            let cidx = ctx.iadd(&curn, &cand);
            let v = self.choice_value(ctx, gm, &cidx);
            let unvis = self.tabu_check(ctx, gm, tabu, tid_global, tid_local, &cand);
            let p = ctx.fmul(&v, &unvis);
            sum = ctx.fadd(&sum, &p);
            ps.push(p);
            cands.push(cand);
        }

        let zero = ctx.splat_f32(0.0);
        let feasible = ctx.fgt(&sum, &zero);
        let mut next = ctx.splat_u32(0);
        ctx.branch(&feasible);
        ctx.with_mask(gm, &feasible, |ctx, gm| {
            let r = self.draw(ctx, gm, lcg);
            let target = ctx.fmul(&r, &sum);
            let mut cum = ctx.splat_f32(0.0);
            let mut done = Mask::none(ctx.block_dim as usize);
            let mut chosen = cands[0].clone();
            for c in 0..nn as usize {
                cum = ctx.fadd(&cum, &ps[c]);
                let crossed = ctx.fge(&cum, &target);
                let has_p = ctx.fgt(&ps[c], &zero);
                let newly = crossed.and_not(&done).and(&has_p);
                chosen = ctx.select_u32(&newly, &cands[c], &chosen);
                done = done.or(&newly);
                ctx.charge(Op::IAlu, 2); // predicate bookkeeping
            }
            // Rounding shortfall: pick the best-probability candidate.
            let undone = done.not();
            ctx.if_then(gm, &undone, |ctx, _| {
                let mut bv = ctx.splat_f32(-1.0);
                let mut bc = cands[0].clone();
                for c in 0..nn as usize {
                    let better = ctx.fgt(&ps[c], &bv);
                    bv = ctx.select_f32(&better, &ps[c], &bv);
                    bc = ctx.select_u32(&better, &cands[c], &bc);
                }
                ctx.assign_u32(&mut chosen, &bc);
            });
            ctx.assign_u32(&mut next, &chosen);
        });
        let infeasible = feasible.not();
        ctx.with_mask(gm, &infeasible, |ctx, gm| {
            // All candidates visited: deterministic best over all
            // cities — the divergent fallback.
            let best = self.argmax_unvisited(ctx, gm, tabu, tid_global, tid_local, cur);
            ctx.assign_u32(&mut next, &best);
        });
        next
    }
}

impl Kernel for TaskTourKernel {
    fn name(&self) -> &'static str {
        "tour_task"
    }

    fn run_block(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem) {
        let n = self.bufs.n;
        let stride = self.bufs.stride;
        let layout = self.layout(ctx.device());

        // Shared tabu allocation + zeroing (whole block participates).
        let tabu = match layout {
            TabuLayout::Global => TabuState::Global,
            TabuLayout::SharedInt => {
                let arr = ctx.shared_alloc_u32((self.opts.block * n) as usize);
                let tl = ctx.thread_idx();
                let nreg = ctx.splat_u32(n);
                let row = ctx.imul(&tl, &nreg);
                let zero = ctx.splat_u32(0);
                for j in 0..n {
                    let jr = ctx.splat_u32(j);
                    let idx = ctx.iadd(&row, &jr);
                    ctx.sh_st_u32(arr, &idx, &zero);
                }
                TabuState::SharedInt(arr)
            }
            TabuLayout::SharedBits => {
                let words = n.div_ceil(32);
                let arr = ctx.shared_alloc_u32((self.opts.block * words) as usize);
                let tl = ctx.thread_idx();
                let wreg = ctx.splat_u32(words);
                let row = ctx.imul(&tl, &wreg);
                let zero = ctx.splat_u32(0);
                for w in 0..words {
                    let wr = ctx.splat_u32(w);
                    let idx = ctx.iadd(&row, &wr);
                    ctx.sh_st_u32(arr, &idx, &zero);
                }
                TabuState::SharedBits(arr)
            }
        };

        let tid_global = ctx.global_thread_idx();
        let tid_local = ctx.thread_idx();
        let m = ctx.splat_u32(self.bufs.m);
        let is_ant = ctx.ult(&tid_global, &m);

        ctx.if_then(gm, &is_ant, |ctx, gm| {
            let mut lcg = {
                let base = ctx.block_idx * ctx.block_dim;
                let seed = self.seed ^ self.iteration.wrapping_mul(0x9E37_79B9);
                ctx.reg_from_fn_u32(|lane| PmRng::thread_seed(seed, (base as usize + lane) as u64))
            };

            // Random start city.
            let r0 = self.draw(ctx, gm, &mut lcg);
            let nf = ctx.splat_f32(n as f32);
            let sf = ctx.fmul(&r0, &nf);
            let raw = ctx.f2u(&sf);
            let nm1 = ctx.splat_u32(n - 1);
            let start = ctx.imin(&raw, &nm1);

            let stride_reg = ctx.splat_u32(stride);
            let base = ctx.imul(&tid_global, &stride_reg);
            ctx.st_global_u32(gm, self.bufs.tours, &base, &start);
            self.tabu_set(ctx, gm, &tabu, &tid_global, &tid_local, &start);

            let mut cur = start.clone();
            let mut len = ctx.splat_f32(0.0);
            let nreg = ctx.splat_u32(n);

            for step in 1..n {
                let next = if self.opts.use_nn_list {
                    self.select_nn(ctx, gm, &tabu, &tid_global, &tid_local, &cur, &mut lcg)
                } else {
                    self.select_full(ctx, gm, &tabu, &tid_global, &tid_local, &cur, &mut lcg)
                };

                let sr = ctx.splat_u32(step);
                let pos = ctx.iadd(&base, &sr);
                ctx.st_global_u32(gm, self.bufs.tours, &pos, &next);
                self.tabu_set(ctx, gm, &tabu, &tid_global, &tid_local, &next);

                let row = ctx.imul(&cur, &nreg);
                let didx = ctx.iadd(&row, &next);
                let d = ctx.ld_global_f32(gm, self.bufs.dist, &didx);
                len = ctx.fadd(&len, &d);
                ctx.assign_u32(&mut cur, &next);
            }

            // Closing edge back to the start.
            let row = ctx.imul(&cur, &nreg);
            let didx = ctx.iadd(&row, &start);
            let d = ctx.ld_global_f32(gm, self.bufs.dist, &didx);
            len = ctx.fadd(&len, &d);

            // Closing city + padding to the tile boundary (Section IV-B).
            for p in n..stride {
                let pr = ctx.splat_u32(p);
                let pos = ctx.iadd(&base, &pr);
                ctx.st_global_u32(gm, self.bufs.tours, &pos, &start);
            }

            ctx.st_global_f32(gm, self.bufs.lengths, &tid_global, &len);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::choice::ChoiceKernel;
    use crate::params::AcoParams;
    use aco_tsp::generator::uniform_random;
    use aco_tsp::Tour;

    fn run_variant(
        opts: TaskOpts,
        n: usize,
        dev: &DeviceSpec,
    ) -> (GlobalMem, ColonyBuffers, LaunchResult) {
        let inst = uniform_random("task", n, 1000.0, 5);
        let mut gm = GlobalMem::new();
        let params = AcoParams::default().nn(12);
        let bufs = ColonyBuffers::allocate(&mut gm, &inst, &params);
        if opts.use_choice_table {
            let ck = ChoiceKernel { bufs, alpha: 1.0, beta: 2.0 };
            launch(dev, &ck.config(), &ck, &mut gm, SimMode::Full).unwrap();
        }
        bufs.clear_visited(&mut gm);
        let k = TaskTourKernel { bufs, opts, alpha: 1.0, beta: 2.0, seed: 42, iteration: 0 };
        let cfg = k.config(dev);
        let r = launch(dev, &cfg, &k, &mut gm, SimMode::Full).unwrap();
        (gm, bufs, r)
    }

    fn assert_valid_tours(gm: &GlobalMem, bufs: &ColonyBuffers, inst_n: usize) {
        for (a, t) in bufs.read_tours(gm).into_iter().enumerate() {
            assert_eq!(t.len(), inst_n + 1);
            assert_eq!(t[0], t[inst_n], "ant {a}: tour must close on its start");
            let tour = Tour::new(t[..inst_n].to_vec()).unwrap_or_else(|e| {
                panic!("ant {a}: invalid tour: {e}");
            });
            assert!(tour.is_valid());
        }
    }

    #[test]
    fn baseline_builds_valid_tours() {
        let dev = DeviceSpec::tesla_c1060();
        let opts = TaskOpts {
            use_choice_table: false,
            rng: RngKind::CurandLike,
            use_nn_list: false,
            tabu: TabuPlacement::Global,
            texture: false,
            block: 128,
        };
        let (gm, bufs, r) = run_variant(opts, 40, &dev);
        assert_valid_tours(&gm, &bufs, 40);
        assert!(r.stats.rng_calls > 0.0);
        assert!(r.stats.divergent_branches > 0.0, "roulette scan must diverge");
    }

    #[test]
    fn nn_list_variant_builds_valid_tours_and_is_cheaper() {
        let dev = DeviceSpec::tesla_c1060();
        let full = TaskOpts {
            use_choice_table: true,
            rng: RngKind::DeviceLcg,
            use_nn_list: false,
            tabu: TabuPlacement::Global,
            texture: false,
            block: 128,
        };
        let nn = TaskOpts { use_nn_list: true, ..full };
        let (_, _, r_full) = run_variant(full, 48, &dev);
        let (gm, bufs, r_nn) = run_variant(nn, 48, &dev);
        assert_valid_tours(&gm, &bufs, 48);
        assert!(
            r_nn.time.total_ms < r_full.time.total_ms,
            "NN list must beat the full scan: {} vs {}",
            r_nn.time.total_ms,
            r_full.time.total_ms
        );
    }

    #[test]
    fn shared_tabu_places_ints_for_small_instances() {
        let dev = DeviceSpec::tesla_c1060();
        let opts = TaskOpts {
            use_choice_table: true,
            rng: RngKind::DeviceLcg,
            use_nn_list: true,
            tabu: TabuPlacement::Shared,
            texture: false,
            block: 32,
        };
        let k = TaskTourKernel {
            bufs: ColonyBuffers::allocate(
                &mut GlobalMem::new(),
                &uniform_random("x", 48, 100.0, 1),
                &AcoParams::default().nn(10),
            ),
            opts,
            alpha: 1.0,
            beta: 2.0,
            seed: 1,
            iteration: 0,
        };
        // 32 ants x 48 cities x 4 B = 6 KB <= 16 KB -> int layout.
        assert_eq!(k.layout(&dev), TabuLayout::SharedInt);
        // Bigger instance on the same device -> bit layout.
        let k2 = TaskTourKernel {
            bufs: ColonyBuffers::allocate(
                &mut GlobalMem::new(),
                &uniform_random("x", 300, 100.0, 2),
                &AcoParams::default().nn(10),
            ),
            ..k
        };
        assert_eq!(k2.layout(&dev), TabuLayout::SharedBits);
        // Fermi's 48 KB keeps ints longer.
        assert_eq!(k2.layout(&DeviceSpec::tesla_m2050()), TabuLayout::SharedInt);
    }

    #[test]
    fn shared_tabu_variant_builds_valid_tours() {
        let dev = DeviceSpec::tesla_c1060();
        let opts = TaskOpts {
            use_choice_table: true,
            rng: RngKind::DeviceLcg,
            use_nn_list: true,
            tabu: TabuPlacement::Shared,
            texture: true,
            block: 32,
        };
        let (gm, bufs, r) = run_variant(opts, 60, &dev);
        assert_valid_tours(&gm, &bufs, 60);
        assert!(r.stats.shared_accesses > 0.0);
        assert!(r.stats.tex_hits + r.stats.tex_misses > 0.0);
    }

    #[test]
    fn device_lcg_beats_curand_like() {
        let dev = DeviceSpec::tesla_c1060();
        let curand = TaskOpts {
            use_choice_table: true,
            rng: RngKind::CurandLike,
            use_nn_list: false,
            tabu: TabuPlacement::Global,
            texture: false,
            block: 128,
        };
        let lcg = TaskOpts { rng: RngKind::DeviceLcg, ..curand };
        let (_, _, r_curand) = run_variant(curand, 40, &dev);
        let (_, _, r_lcg) = run_variant(lcg, 40, &dev);
        assert!(
            r_lcg.time.total_ms < r_curand.time.total_ms,
            "device LCG must beat global-state RNG: {} vs {}",
            r_lcg.time.total_ms,
            r_curand.time.total_ms
        );
    }

    #[test]
    fn lengths_match_tours() {
        let dev = DeviceSpec::tesla_m2050();
        let opts = TaskOpts {
            use_choice_table: true,
            rng: RngKind::DeviceLcg,
            use_nn_list: true,
            tabu: TabuPlacement::Global,
            texture: false,
            block: 128,
        };
        let inst = uniform_random("task", 36, 1000.0, 9);
        let mut gm = GlobalMem::new();
        let params = AcoParams::default().nn(10);
        let bufs = ColonyBuffers::allocate(&mut gm, &inst, &params);
        let ck = ChoiceKernel { bufs, alpha: 1.0, beta: 2.0 };
        launch(&dev, &ck.config(), &ck, &mut gm, SimMode::Full).unwrap();
        bufs.clear_visited(&mut gm);
        let k = TaskTourKernel { bufs, opts, alpha: 1.0, beta: 2.0, seed: 3, iteration: 1 };
        let cfg = k.config(&dev);
        launch(&dev, &cfg, &k, &mut gm, SimMode::Full).unwrap();

        let lengths = bufs.read_lengths(&gm);
        for (a, t) in bufs.read_tours(&gm).into_iter().enumerate() {
            let tour = Tour::new(t[..36].to_vec()).expect("valid");
            let exact = tour.length(inst.matrix()) as f32;
            let rel = (lengths[a] - exact).abs() / exact;
            assert!(rel < 1e-3, "ant {a}: device length {} vs exact {exact}", lengths[a]);
        }
    }
}
