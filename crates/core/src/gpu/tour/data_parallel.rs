//! Data-parallel tour construction (Table II, versions 7–8; Figure 1).
//!
//! The paper's main proposal: **one thread block per ant, one thread per
//! city**. Each construction step, every thread loads the choice value of
//! its city, draws a random number, multiplies in the tabu flag, and a
//! shared-memory max-reduction picks the next city. Cities beyond the
//! block size are covered by *tiling*: a "partial best" is selected per
//! tile and the best of the partial bests wins (Section IV-A).
//!
//! The tabu list is bit-packed in registers — one bit per tile per thread
//! — exactly the paper's scheme, including the integer div/mod it costs to
//! locate a city's owner thread and tile.
//!
//! Note the selection rule: this is a *stochastically weighted argmax*
//! (`argmax_j choice[cur][j] * r_j` over unvisited `j`), not the exact
//! roulette distribution; the paper adopts it for the GPU and reports
//! "results similar to those obtained by the sequential code". The
//! quality experiments in `crate::quality` quantify that claim.

use aco_simt::prelude::*;
use aco_simt::rng::PmRng;

use crate::gpu::buffers::ColonyBuffers;

/// The data-parallel construction kernel.
pub struct DataParallelTourKernel {
    /// Device buffers.
    pub bufs: ColonyBuffers,
    /// Route choice loads through the texture cache (version 8).
    pub texture: bool,
    /// Colony seed.
    pub seed: u64,
    /// Iteration number.
    pub iteration: u64,
    /// Override the block layout (must be a power of two). `None` uses
    /// the default policy; the ablation experiment sweeps this to check
    /// the paper's "empirically demonstrated optimum thread block layout".
    pub block_override: Option<u32>,
}

impl DataParallelTourKernel {
    /// Construct with the default block policy.
    pub fn new(bufs: ColonyBuffers, texture: bool, seed: u64, iteration: u64) -> Self {
        DataParallelTourKernel { bufs, texture, seed, iteration, block_override: None }
    }

    /// Threads per block: the smallest power of two covering `n`, capped
    /// at 256 (the paper's "empirically demonstrated optimum thread block
    /// layout"; power of two so the tree reduction is uniform).
    pub fn block_dim(&self) -> u32 {
        match self.block_override {
            Some(t) => {
                assert!(t.is_power_of_two(), "block layout must be a power of two");
                t
            }
            None => (self.bufs.n.next_power_of_two()).clamp(32, 256),
        }
    }

    /// Number of tiles covering the cities.
    pub fn tiles(&self) -> u32 {
        self.bufs.n.div_ceil(self.block_dim())
    }

    /// Launch geometry: one block per ant.
    pub fn config(&self) -> LaunchConfig {
        let t = self.block_dim();
        assert!(self.tiles() <= 32, "bit-packed tabu supports at most 32 tiles (n <= {})", 32 * t);
        LaunchConfig::new(self.bufs.m, t).regs(16).shared(2 * t * 4)
    }

    fn load_choice(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem, idx: &Reg<u32>) -> Reg<f32> {
        if self.texture {
            ctx.ld_tex_f32(gm, self.bufs.choice, idx)
        } else {
            ctx.ld_global_f32(gm, self.bufs.choice, idx)
        }
    }

    /// Mark `city` visited: its owner thread sets bit `city / T` —
    /// the div/mod arithmetic the paper attributes to the bitwise tabu.
    fn mark_visited(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem, tabu: &mut Reg<u32>, city: u32) {
        let t = self.block_dim();
        ctx.charge(Op::IDivMod, 2); // owner = city % T, tile = city / T
        let owner = city % t;
        let tile = city / t;
        let owner_mask = ctx.lane_mask(owner);
        ctx.if_then(gm, &owner_mask, |ctx, _| {
            let bit = ctx.splat_u32(1 << tile);
            let updated = ctx.ior(tabu, &bit);
            ctx.assign_u32(tabu, &updated);
        });
    }
}

impl Kernel for DataParallelTourKernel {
    fn name(&self) -> &'static str {
        "tour_data_parallel"
    }

    fn run_block(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem) {
        let n = self.bufs.n;
        let t = self.block_dim();
        let tiles = self.tiles();
        let stride = self.bufs.stride;
        let ant = ctx.block_idx;
        let base_scalar = ant * stride;

        let sh_val = ctx.shared_alloc_f32(t as usize);
        let sh_idx = ctx.shared_alloc_u32(t as usize);

        let lane = ctx.thread_idx();
        let mut lcg = {
            let seed = self.seed ^ self.iteration.wrapping_mul(0x9E37_79B9);
            let base = ant * t;
            ctx.reg_from_fn_u32(|l| PmRng::thread_seed(seed, (base as usize + l) as u64))
        };
        // Per-lane bit-packed tabu: bit `k` = "my city in tile k visited".
        let mut tabu = ctx.splat_u32(0);

        // Random start city from lane 0's stream.
        let r0 = ctx.lcg_next_f32(&mut lcg);
        let start = ((r0.lane(0) * n as f32) as u32).min(n - 1);
        let lane0 = ctx.lane_mask(0);
        let start_reg = ctx.splat_u32(start);
        let base_reg = ctx.splat_u32(base_scalar);
        ctx.if_then(gm, &lane0, |ctx, gm| {
            ctx.st_global_u32(gm, self.bufs.tours, &base_reg, &start_reg);
        });
        self.mark_visited(ctx, gm, &mut tabu, start);

        let mut cur = start;
        let mut len = 0.0f32;
        let neg = ctx.splat_f32(-1.0);
        let zero_u = ctx.splat_u32(0);
        let one_u = ctx.splat_u32(1);
        let cells_m1 = ctx.splat_u32(n * n - 1);
        let n_reg = ctx.splat_u32(n);

        for step in 1..n {
            let mut best_val = f32::NEG_INFINITY;
            let mut best_city = u32::MAX;

            for tile in 0..tiles {
                // city = tile*T + lane
                let tile_base = ctx.splat_u32(tile * t);
                let city = ctx.iadd(&tile_base, &lane);
                let in_range = ctx.ult(&city, &n_reg);
                // unvisited = bit `tile` of my tabu register is clear
                let tile_sh = ctx.splat_u32(tile);
                let shifted = ctx.ishr(&tabu, &tile_sh);
                let bit = ctx.iand(&shifted, &one_u);
                let unvis = ctx.ueq(&bit, &zero_u).and(&in_range);

                // value = choice[cur*n + city] * r  (clamped index for the
                // out-of-range lanes; their value is masked to -1 anyway)
                let row = ctx.splat_u32(cur * n);
                let idx_raw = ctx.iadd(&row, &city);
                let idx = ctx.imin(&idx_raw, &cells_m1);
                let c = self.load_choice(ctx, gm, &idx);
                let r = ctx.lcg_next_f32(&mut lcg);
                let v = ctx.fmul(&c, &r);
                let val = ctx.select_f32(&unvis, &v, &neg);

                // Shared-memory argmax reduction over the tile.
                ctx.sh_st_f32(sh_val, &lane, &val);
                ctx.sh_st_u32(sh_idx, &lane, &city);
                ctx.sync_threads();
                let mut s = t / 2;
                while s >= 1 {
                    let s_reg = ctx.splat_u32(s);
                    let is_lo = ctx.ult(&lane, &s_reg);
                    ctx.if_then(gm, &is_lo, |ctx, _| {
                        let other = ctx.iadd(&lane, &s_reg);
                        let vo = ctx.sh_ld_f32(sh_val, &other);
                        let io = ctx.sh_ld_u32(sh_idx, &other);
                        let vm = ctx.sh_ld_f32(sh_val, &lane);
                        let im = ctx.sh_ld_u32(sh_idx, &lane);
                        let better = ctx.fgt(&vo, &vm);
                        let nv = ctx.select_f32(&better, &vo, &vm);
                        let ni = ctx.select_u32(&better, &io, &im);
                        ctx.sh_st_f32(sh_val, &lane, &nv);
                        ctx.sh_st_u32(sh_idx, &lane, &ni);
                    });
                    ctx.sync_threads();
                    s /= 2;
                }
                let tile_val = ctx.sh_ld_f32_uniform(sh_val, 0);
                let tile_city = ctx.sh_ld_u32_uniform(sh_idx, 0);
                ctx.charge(Op::FAlu, 1); // partial-best comparison
                if tile_val > best_val {
                    best_val = tile_val;
                    best_city = tile_city;
                }
            }

            debug_assert!(best_city < n, "a feasible city always remains");
            let winner = best_city;
            self.mark_visited(ctx, gm, &mut tabu, winner);

            // Thread 0 appends to the tour and accumulates the length.
            let step_reg = ctx.splat_u32(base_scalar + step);
            let winner_reg = ctx.splat_u32(winner);
            let didx = ctx.splat_u32(cur * n + winner);
            let lane0 = ctx.lane_mask(0);
            let mut d_reg = ctx.splat_f32(0.0);
            ctx.if_then(gm, &lane0, |ctx, gm| {
                ctx.st_global_u32(gm, self.bufs.tours, &step_reg, &winner_reg);
                let d = ctx.ld_global_f32(gm, self.bufs.dist, &didx);
                ctx.assign_f32(&mut d_reg, &d);
            });
            len += d_reg.lane(0);
            cur = winner;
        }

        // Closing edge + padding + length.
        let didx = ctx.splat_u32(cur * n + start);
        let lane0 = ctx.lane_mask(0);
        let mut d_reg = ctx.splat_f32(0.0);
        ctx.if_then(gm, &lane0, |ctx, gm| {
            let d = ctx.ld_global_f32(gm, self.bufs.dist, &didx);
            ctx.assign_f32(&mut d_reg, &d);
        });
        len += d_reg.lane(0);

        let start_fill = ctx.splat_u32(start);
        let stride_reg = ctx.splat_u32(stride);
        let mut p = n;
        while p < stride {
            let p_reg = ctx.splat_u32(p);
            let pos_local = ctx.iadd(&p_reg, &lane);
            let fits = ctx.ult(&pos_local, &stride_reg);
            let pos = ctx.iadd(&base_reg, &pos_local);
            ctx.if_then(gm, &fits, |ctx, gm| {
                ctx.st_global_u32(gm, self.bufs.tours, &pos, &start_fill);
            });
            p += t;
        }

        let len_reg = ctx.splat_f32(len);
        let ant_reg = ctx.splat_u32(ant);
        ctx.if_then(gm, &lane0, |ctx, gm| {
            ctx.st_global_f32(gm, self.bufs.lengths, &ant_reg, &len_reg);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::choice::ChoiceKernel;
    use crate::params::AcoParams;
    use aco_tsp::generator::uniform_random;
    use aco_tsp::Tour;

    fn run(n: usize, texture: bool, dev: &DeviceSpec) -> (GlobalMem, ColonyBuffers, LaunchResult) {
        let inst = uniform_random("dp", n, 1000.0, 13);
        let mut gm = GlobalMem::new();
        let params = AcoParams::default().nn(10);
        let bufs = ColonyBuffers::allocate(&mut gm, &inst, &params);
        let ck = ChoiceKernel { bufs, alpha: 1.0, beta: 2.0 };
        launch(dev, &ck.config(), &ck, &mut gm, SimMode::Full).unwrap();
        let k =
            DataParallelTourKernel { bufs, texture, seed: 11, iteration: 0, block_override: None };
        let cfg = k.config();
        let r = launch(dev, &cfg, &k, &mut gm, SimMode::Full).unwrap();
        (gm, bufs, r)
    }

    #[test]
    fn produces_valid_closed_tours() {
        let dev = DeviceSpec::tesla_c1060();
        let (gm, bufs, r) = run(48, false, &dev);
        for (a, t) in bufs.read_tours(&gm).into_iter().enumerate() {
            assert_eq!(t[0], t[48], "ant {a} must close its tour");
            let tour = Tour::new(t[..48].to_vec()).expect("permutation");
            assert!(tour.is_valid(), "ant {a}");
        }
        assert!(r.stats.barriers > 0.0, "reduction uses __syncthreads");
        assert!(r.stats.shared_accesses > 0.0);
    }

    #[test]
    fn tiling_covers_instances_larger_than_a_block() {
        let dev = DeviceSpec::tesla_c1060();
        // n = 300 > 256 -> 2 tiles.
        let (gm, bufs, _) = run(300, false, &dev);
        let k = DataParallelTourKernel {
            bufs,
            texture: false,
            seed: 0,
            iteration: 0,
            block_override: None,
        };
        assert_eq!(k.block_dim(), 256);
        assert_eq!(k.tiles(), 2);
        for t in bufs.read_tours(&gm) {
            let tour = Tour::new(t[..300].to_vec()).expect("permutation");
            assert!(tour.is_valid());
        }
    }

    #[test]
    fn device_lengths_match_tours() {
        let dev = DeviceSpec::tesla_m2050();
        let inst = uniform_random("dp", 64, 1000.0, 13);
        let mut gm = GlobalMem::new();
        let bufs = ColonyBuffers::allocate(&mut gm, &inst, &AcoParams::default().nn(10));
        let ck = ChoiceKernel { bufs, alpha: 1.0, beta: 2.0 };
        launch(&dev, &ck.config(), &ck, &mut gm, SimMode::Full).unwrap();
        let k = DataParallelTourKernel {
            bufs,
            texture: true,
            seed: 7,
            iteration: 3,
            block_override: None,
        };
        launch(&dev, &k.config(), &k, &mut gm, SimMode::Full).unwrap();
        let lengths = bufs.read_lengths(&gm);
        for (a, t) in bufs.read_tours(&gm).into_iter().enumerate() {
            let tour = Tour::new(t[..64].to_vec()).expect("valid");
            let exact = tour.length(inst.matrix()) as f32;
            let rel = (lengths[a] - exact).abs() / exact;
            assert!(rel < 1e-3, "ant {a}: {} vs {exact}", lengths[a]);
        }
    }

    #[test]
    fn coalesced_choice_loads_beat_task_parallel_on_small_instances() {
        // The paper's core claim: data parallelism wins on small/medium
        // instances (Table II: 0.36 ms vs 1.35 ms on att48).
        use crate::gpu::tour::task::{RngKind, TabuPlacement, TaskOpts, TaskTourKernel};
        let dev = DeviceSpec::tesla_c1060();
        let inst = uniform_random("cmp", 48, 1000.0, 5);
        let mut gm = GlobalMem::new();
        let params = AcoParams::default().nn(12);
        let bufs = ColonyBuffers::allocate(&mut gm, &inst, &params);
        let ck = ChoiceKernel { bufs, alpha: 1.0, beta: 2.0 };
        launch(&dev, &ck.config(), &ck, &mut gm, SimMode::Full).unwrap();

        bufs.clear_visited(&mut gm);
        let task = TaskTourKernel {
            bufs,
            opts: TaskOpts {
                use_choice_table: true,
                rng: RngKind::DeviceLcg,
                use_nn_list: true,
                tabu: TabuPlacement::Shared,
                texture: true,
                block: 32,
            },
            alpha: 1.0,
            beta: 2.0,
            seed: 3,
            iteration: 0,
        };
        let rt = launch(&dev, &task.config(&dev), &task, &mut gm, SimMode::Full).unwrap();

        let dp = DataParallelTourKernel {
            bufs,
            texture: true,
            seed: 3,
            iteration: 0,
            block_override: None,
        };
        let rd = launch(&dev, &dp.config(), &dp, &mut gm, SimMode::Full).unwrap();
        assert!(
            rd.time.total_ms < rt.time.total_ms,
            "data parallel must win on att48-scale: {} vs {}",
            rd.time.total_ms,
            rt.time.total_ms
        );
    }

    #[test]
    fn texture_reduces_dram_traffic() {
        let dev = DeviceSpec::tesla_c1060();
        let (_, _, plain) = run(100, false, &dev);
        let (_, _, tex) = run(100, true, &dev);
        assert!(
            tex.stats.dram_bytes < plain.stats.dram_bytes,
            "texture cache must cut DRAM bytes: {} vs {}",
            tex.stats.dram_bytes,
            plain.stats.dram_bytes
        );
    }
}
