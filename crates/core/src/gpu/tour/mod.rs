//! Tour-construction strategies — the eight rows of Table II.

pub mod data_parallel;
pub mod task;

use aco_simt::prelude::*;
use aco_simt::SimtError;

pub use data_parallel::DataParallelTourKernel;
pub use task::{RngKind, TabuPlacement, TaskOpts, TaskTourKernel};

use super::buffers::ColonyBuffers;
use super::choice::ChoiceKernel;

/// One row of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TourStrategy {
    /// 1. Task parallelism, heuristic recomputed per step, library RNG.
    Baseline,
    /// 2. + the Choice kernel (precomputed `choice_info`).
    ChoiceKernel,
    /// 3. + device-function LCG instead of CURAND.
    DeviceRng,
    /// 4. + nearest-neighbour candidate lists.
    NNList,
    /// 5. + tabu list in shared memory.
    NNListShared,
    /// 6. + texture-cached choice loads.
    NNListSharedTex,
    /// 7. Data parallelism (block per ant, thread per city).
    DataParallel,
    /// 8. Data parallelism + texture-cached choice loads.
    DataParallelTex,
}

impl TourStrategy {
    /// All rows, in table order.
    pub const ALL: [TourStrategy; 8] = [
        TourStrategy::Baseline,
        TourStrategy::ChoiceKernel,
        TourStrategy::DeviceRng,
        TourStrategy::NNList,
        TourStrategy::NNListShared,
        TourStrategy::NNListSharedTex,
        TourStrategy::DataParallel,
        TourStrategy::DataParallelTex,
    ];

    /// The row label as printed in the paper.
    pub fn paper_row(self) -> &'static str {
        match self {
            TourStrategy::Baseline => "1. Baseline Version",
            TourStrategy::ChoiceKernel => "2. Choice Kernel",
            TourStrategy::DeviceRng => "3. Without CURAND",
            TourStrategy::NNList => "4. NNList",
            TourStrategy::NNListShared => "5. NNList + Shared Memory",
            TourStrategy::NNListSharedTex => "6. NNList + Shared&Texture Memory",
            TourStrategy::DataParallel => "7. Increasing Data Parallelism",
            TourStrategy::DataParallelTex => "8. Data Parallelism + Texture Memory",
        }
    }

    /// Whether this row launches the Choice kernel each iteration.
    pub fn uses_choice_kernel(self) -> bool {
        !matches!(self, TourStrategy::Baseline)
    }

    /// Task-kernel configuration for rows 1–6 (`None` for 7–8).
    pub fn task_opts(self) -> Option<TaskOpts> {
        let base = TaskOpts {
            use_choice_table: true,
            rng: RngKind::DeviceLcg,
            use_nn_list: false,
            tabu: TabuPlacement::Global,
            texture: false,
            block: 128,
        };
        Some(match self {
            TourStrategy::Baseline => {
                TaskOpts { use_choice_table: false, rng: RngKind::CurandLike, ..base }
            }
            TourStrategy::ChoiceKernel => TaskOpts { rng: RngKind::CurandLike, ..base },
            TourStrategy::DeviceRng => base,
            TourStrategy::NNList => TaskOpts { use_nn_list: true, ..base },
            TourStrategy::NNListShared => {
                TaskOpts { use_nn_list: true, tabu: TabuPlacement::Shared, block: 32, ..base }
            }
            TourStrategy::NNListSharedTex => TaskOpts {
                use_nn_list: true,
                tabu: TabuPlacement::Shared,
                texture: true,
                block: 32,
                ..base
            },
            TourStrategy::DataParallel | TourStrategy::DataParallelTex => return None,
        })
    }
}

/// Everything a tour-construction launch produces.
#[derive(Debug, Clone)]
pub struct TourRun {
    /// Time of the construction kernel itself.
    pub tour_time: KernelTime,
    /// Time of the Choice kernel, when the row uses it.
    pub choice_time: Option<KernelTime>,
    /// Construction-kernel counters.
    pub stats: KernelStats,
    /// Construction-kernel occupancy.
    pub occupancy: aco_simt::Occupancy,
}

impl TourRun {
    /// Total modeled milliseconds for the row (choice + construction, the
    /// quantity Table II reports).
    pub fn total_ms(&self) -> f64 {
        self.tour_time.total_ms + self.choice_time.map_or(0.0, |t| t.total_ms)
    }
}

/// Run one Table II row on `dev`.
#[allow(clippy::too_many_arguments)]
pub fn run_tour(
    dev: &DeviceSpec,
    gm: &mut GlobalMem,
    bufs: ColonyBuffers,
    strategy: TourStrategy,
    alpha: f32,
    beta: f32,
    seed: u64,
    iteration: u64,
    mode: SimMode,
) -> Result<TourRun, SimtError> {
    run_tour_threads(dev, gm, bufs, strategy, alpha, beta, seed, iteration, mode, 1)
}

/// [`run_tour`] with the simulator's blocks executed across up to
/// `threads` host threads (results are bit-identical for any count; see
/// [`aco_simt::launch_threads`]).
#[allow(clippy::too_many_arguments)]
pub fn run_tour_threads(
    dev: &DeviceSpec,
    gm: &mut GlobalMem,
    bufs: ColonyBuffers,
    strategy: TourStrategy,
    alpha: f32,
    beta: f32,
    seed: u64,
    iteration: u64,
    mode: SimMode,
    threads: usize,
) -> Result<TourRun, SimtError> {
    let choice_time = if strategy.uses_choice_kernel() {
        let ck = ChoiceKernel { bufs, alpha, beta };
        // Always full fidelity: the construction kernel's control flow
        // (roulette trip counts, fallback frequency) depends on a complete
        // choice table, and the kernel itself is cheap (`n^2` threads of
        // straight-line code).
        let r = launch_threads(dev, &ck.config(), &ck, gm, SimMode::Full, threads)?;
        Some(r.time)
    } else {
        None
    };

    let run = match strategy.task_opts() {
        Some(opts) => {
            bufs.clear_visited(gm);
            let k = TaskTourKernel { bufs, opts, alpha, beta, seed, iteration };
            let cfg = k.config(dev);
            launch_threads(dev, &cfg, &k, gm, mode, threads)?
        }
        None => {
            let k = DataParallelTourKernel {
                bufs,
                texture: strategy == TourStrategy::DataParallelTex,
                seed,
                iteration,
                block_override: None,
            };
            let cfg = k.config();
            launch_threads(dev, &cfg, &k, gm, mode, threads)?
        }
    };

    Ok(TourRun { tour_time: run.time, choice_time, stats: run.stats, occupancy: run.occupancy })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::AcoParams;
    use aco_tsp::generator::uniform_random;

    #[test]
    fn all_rows_run_and_improve_monotonically_where_the_paper_says() {
        let dev = DeviceSpec::tesla_c1060();
        let inst = uniform_random("rows", 48, 1000.0, 3);
        let mut times = Vec::new();
        for s in TourStrategy::ALL {
            let mut gm = GlobalMem::new();
            let bufs = ColonyBuffers::allocate(&mut gm, &inst, &AcoParams::default().nn(12));
            let r = run_tour(&dev, &mut gm, bufs, s, 1.0, 2.0, 7, 0, SimMode::Full).unwrap();
            times.push((s, r.total_ms()));
        }
        // Table II, att48 column orderings the paper reports:
        let ms = |s: TourStrategy| times.iter().find(|&&(x, _)| x == s).expect("ran").1;
        assert!(ms(TourStrategy::ChoiceKernel) < ms(TourStrategy::Baseline));
        assert!(ms(TourStrategy::DeviceRng) < ms(TourStrategy::ChoiceKernel));
        assert!(ms(TourStrategy::NNList) < ms(TourStrategy::DeviceRng));
        assert!(ms(TourStrategy::DataParallel) < ms(TourStrategy::NNListSharedTex));
        assert!(ms(TourStrategy::DataParallelTex) <= ms(TourStrategy::DataParallel) * 1.05);
    }

    #[test]
    fn row_labels_are_table_ii() {
        assert_eq!(TourStrategy::Baseline.paper_row(), "1. Baseline Version");
        assert_eq!(
            TourStrategy::DataParallelTex.paper_row(),
            "8. Data Parallelism + Texture Memory"
        );
        assert_eq!(TourStrategy::ALL.len(), 8);
    }
}
