//! GPU designs for the ACO algorithm (Section IV of the paper), written
//! against the [`aco_simt`] simulator.

pub mod acs;
pub mod buffers;
pub mod choice;
pub mod pheromone;
pub mod system;
pub mod tour;

pub use acs::GpuAntColonySystem;
pub use buffers::{ColonyBuffers, THETA};
pub use pheromone::{run_pheromone, run_pheromone_threads, PheromoneRun, PheromoneStrategy};
pub use system::{GpuAntSystem, GpuIterationReport};
pub use tour::{run_tour, run_tour_threads, TourRun, TourStrategy};

/// Index of the first minimum — the canonical "iteration-best ant"
/// choice both GPU colonies use (first strict minimum, matching the
/// pre-local-search best-tracking order).
pub(crate) fn first_min(lens: &[u64]) -> usize {
    let mut k = 0;
    for (i, &l) in lens.iter().enumerate() {
        if l < lens[k] {
            k = i;
        }
    }
    k
}

/// Cap on threads a colony may add on top of its profile's
/// `exec_threads` budget when the engine donates idle workers (see
/// `EngineConfig::donate_idle_threads`). Simulator results are
/// bit-identical at any host thread count, so donation only trades
/// wall-clock; the cap bounds oversubscription.
pub const MAX_DONATED_THREADS: usize = 8;

/// The local-search execution context shared by both GPU colonies:
/// which strategy runs, on which device, against which colony buffers.
pub(crate) struct LsPass<'a> {
    pub dev: &'a aco_simt::DeviceSpec,
    pub bufs: ColonyBuffers,
    /// The per-ant 2-opt family's device scratch (present iff the
    /// strategy is `TwoOptNn` with the iteration-best scope; guaranteed
    /// by `set_local_search`).
    pub ls_dev: Option<aco_localsearch::TwoOptDev>,
    /// The batched all-ants 2-opt family's scratch (present iff the
    /// strategy is `TwoOptNn` with the all-ants scope).
    pub batch_dev: Option<aco_localsearch::TwoOptBatchDev>,
    /// The `or_opt` family's scratch (present iff the strategy is
    /// `OrOpt`; serves both scopes via windowed launches).
    pub oropt_dev: Option<aco_localsearch::OrOptDev>,
    pub exec_threads: usize,
    pub strategy: aco_localsearch::LocalSearch,
}

impl LsPass<'_> {
    /// Re-read one improved tour row from the device and settle the
    /// exact host length plus the f32 device length (the kernels' gain
    /// subtraction is f32-exact at TSPLIB scales; this mirrors the
    /// host-exact best tracking).
    fn resync_ant(
        &self,
        gm: &mut aco_simt::GlobalMem,
        inst: &aco_tsp::TspInstance,
        ant: usize,
        tours: &mut [aco_tsp::Tour],
        lens: &mut [u64],
    ) {
        let n = self.bufs.n as usize;
        let stride = self.bufs.stride as usize;
        let row = &gm.u32(self.bufs.tours)[ant * stride..ant * stride + n];
        tours[ant] =
            aco_tsp::Tour::new(row.to_vec()).expect("local search preserves the permutation");
        lens[ant] = tours[ant].length(inst.matrix());
        gm.f32_mut(self.bufs.lengths)[ant] = lens[ant] as f32;
    }

    /// Improve a contiguous window of ant tours in place — `ants` is
    /// either `[iteration_best]` or `0..m`, matching [`aco_localsearch::LsScope`].
    ///
    /// Device strategies batch the whole window into `O(rounds)`
    /// launches: `TwoOptNn` runs the per-ant family for a single ant and
    /// the batched all-ants family otherwise; `OrOpt` runs the windowed
    /// `or_opt` family for any window. The host-only `TwoOpt` falls back
    /// to per-ant host passes + [`ColonyBuffers::write_tour`]. Returns
    /// the modeled kernel milliseconds (0 for host passes). All paths
    /// leave device tours, padding and f32 lengths in sync with the host
    /// copies, so the subsequent pheromone kernels deposit the improved
    /// tours; callers account the improvement from the `lens` delta.
    #[allow(clippy::too_many_arguments)]
    pub fn improve_ants(
        &self,
        gm: &mut aco_simt::GlobalMem,
        inst: &aco_tsp::TspInstance,
        nn_host: &aco_tsp::NearestNeighborLists,
        scratch: &mut aco_localsearch::LsScratch,
        ants: &[usize],
        tours: &mut [aco_tsp::Tour],
        lens: &mut [u64],
    ) -> Result<f64, aco_simt::SimtError> {
        match self.strategy {
            aco_localsearch::LocalSearch::TwoOptNn if ants.len() > 1 => {
                let dev_bufs = self.batch_dev.expect("allocated by set_local_search");
                let run =
                    aco_localsearch::run_two_opt_all(self.dev, gm, dev_bufs, self.exec_threads)?;
                for &ant in ants {
                    self.resync_ant(gm, inst, ant, tours, lens);
                }
                Ok(run.ms)
            }
            aco_localsearch::LocalSearch::TwoOptNn => {
                let dev_bufs = self.ls_dev.expect("allocated by set_local_search");
                let ant = ants[0];
                let run = aco_localsearch::run_two_opt(
                    self.dev,
                    gm,
                    dev_bufs,
                    ant as u32,
                    self.exec_threads,
                )?;
                self.resync_ant(gm, inst, ant, tours, lens);
                Ok(run.ms)
            }
            aco_localsearch::LocalSearch::OrOpt => {
                let dev_bufs = self.oropt_dev.expect("allocated by set_local_search");
                let first = ants[0] as u32;
                let run = aco_localsearch::run_or_opt(
                    self.dev,
                    gm,
                    dev_bufs,
                    first,
                    ants.len() as u32,
                    self.exec_threads,
                )?;
                for &ant in ants {
                    self.resync_ant(gm, inst, ant, tours, lens);
                }
                Ok(run.ms)
            }
            _ => {
                for &ant in ants {
                    let gain =
                        self.strategy.improve(&mut tours[ant], inst.matrix(), nn_host, scratch);
                    lens[ant] -= gain;
                    self.bufs.write_tour(gm, ant, &tours[ant], lens[ant]);
                }
                Ok(0.0)
            }
        }
    }
}
