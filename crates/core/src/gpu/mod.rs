//! GPU designs for the ACO algorithm (Section IV of the paper), written
//! against the [`aco_simt`] simulator.

pub mod acs;
pub mod buffers;
pub mod choice;
pub mod pheromone;
pub mod system;
pub mod tour;

pub use acs::GpuAntColonySystem;
pub use buffers::{ColonyBuffers, THETA};
pub use pheromone::{run_pheromone, run_pheromone_threads, PheromoneRun, PheromoneStrategy};
pub use system::{GpuAntSystem, GpuIterationReport};
pub use tour::{run_tour, run_tour_threads, TourRun, TourStrategy};
