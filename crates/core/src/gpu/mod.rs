//! GPU designs for the ACO algorithm (Section IV of the paper), written
//! against the [`aco_simt`] simulator.

pub mod acs;
pub mod buffers;
pub mod choice;
pub mod pheromone;
pub mod system;
pub mod tour;

pub use acs::GpuAntColonySystem;
pub use buffers::{ColonyBuffers, THETA};
pub use pheromone::{run_pheromone, run_pheromone_threads, PheromoneRun, PheromoneStrategy};
pub use system::{GpuAntSystem, GpuIterationReport};
pub use tour::{run_tour, run_tour_threads, TourRun, TourStrategy};

/// Index of the first minimum — the canonical "iteration-best ant"
/// choice both GPU colonies use (first strict minimum, matching the
/// pre-local-search best-tracking order).
pub(crate) fn first_min(lens: &[u64]) -> usize {
    let mut k = 0;
    for (i, &l) in lens.iter().enumerate() {
        if l < lens[k] {
            k = i;
        }
    }
    k
}

/// The local-search execution context shared by both GPU colonies:
/// which strategy runs, on which device, against which colony buffers.
pub(crate) struct LsPass<'a> {
    pub dev: &'a aco_simt::DeviceSpec,
    pub bufs: ColonyBuffers,
    /// The 2-opt family's device scratch (present iff the strategy is
    /// the device-resident `TwoOptNn`; guaranteed by `set_local_search`).
    pub ls_dev: Option<aco_localsearch::TwoOptDev>,
    pub exec_threads: usize,
    pub strategy: aco_localsearch::LocalSearch,
}

impl LsPass<'_> {
    /// Improve `ant`'s tour in place: the device kernel family for
    /// `TwoOptNn`, a host pass + [`ColonyBuffers::write_tour`] write-back
    /// for the rest. Returns the modeled kernel milliseconds (0 for host
    /// passes). Both paths leave device tours, padding and the f32
    /// length in sync with the host copy, so the subsequent pheromone
    /// kernels deposit the improved tour; callers account the
    /// improvement from the `lens` delta.
    #[allow(clippy::too_many_arguments)]
    pub fn improve_ant(
        &self,
        gm: &mut aco_simt::GlobalMem,
        inst: &aco_tsp::TspInstance,
        nn_host: &aco_tsp::NearestNeighborLists,
        scratch: &mut aco_localsearch::LsScratch,
        ant: usize,
        tours: &mut [aco_tsp::Tour],
        lens: &mut [u64],
    ) -> Result<f64, aco_simt::SimtError> {
        if self.strategy == aco_localsearch::LocalSearch::TwoOptNn {
            let dev_bufs = self.ls_dev.expect("allocated by set_local_search");
            let run = aco_localsearch::run_two_opt(
                self.dev,
                gm,
                dev_bufs,
                ant as u32,
                self.exec_threads,
            )?;
            let n = self.bufs.n as usize;
            let stride = self.bufs.stride as usize;
            let row = &gm.u32(self.bufs.tours)[ant * stride..ant * stride + n];
            tours[ant] = aco_tsp::Tour::new(row.to_vec()).expect("2-opt preserves the permutation");
            lens[ant] = tours[ant].length(inst.matrix());
            // Settle the f32 length to the exact value (the kernel's
            // gain subtraction is f32-exact for TSPLIB-scale distances;
            // this mirrors the host-exact best tracking).
            gm.f32_mut(self.bufs.lengths)[ant] = lens[ant] as f32;
            Ok(run.ms)
        } else {
            let gain = self.strategy.improve(&mut tours[ant], inst.matrix(), nn_host, scratch);
            lens[ant] -= gain;
            self.bufs.write_tour(gm, ant, &tours[ant], lens[ant]);
            Ok(0.0)
        }
    }
}
