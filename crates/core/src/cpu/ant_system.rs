//! Sequential Ant System — a faithful Rust port of the ACOTSP reference.
//!
//! This is the baseline the paper compares every GPU kernel against
//! ("we compare our implementations with the sequential code, written in
//! ANSI C, provided by Stützle"). The structure mirrors ACOTSP:
//!
//! * `choice_info[i][j] = tau[i][j]^alpha * eta[i][j]^beta` recomputed once
//!   per iteration,
//! * tour construction by the random-proportional rule, either over the
//!   full feasible neighbourhood ("fully probabilistic") or over a
//!   nearest-neighbour candidate list with a best-choice fallback,
//! * pheromone evaporation on every edge followed by per-ant deposit of
//!   `1/C_k`,
//! * `tau0 = m / C_nn` initialisation from a nearest-neighbour tour.
//!
//! Every phase counts its abstract operations (see
//! [`super::counter::OpCounter`]) so the CPU cost model can price it.

use aco_localsearch::{LocalSearch, LsScope, LsScratch};
use aco_simt::rng::PmRng;
use aco_tsp::{nearest_neighbor_tour, NearestNeighborLists, Tour, TspInstance};

use super::counter::OpCounter;
use crate::params::AcoParams;

/// Which construction rule the ants use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TourPolicy {
    /// Scan all unvisited cities each step (paper Figure 4(b) baseline).
    FullProbabilistic,
    /// Roulette over the `nn` candidate list, argmax fallback
    /// (paper Figure 4(a) baseline; ACOTSP default).
    NearestNeighborList,
}

/// Reusable per-ant construction scratch: the visited flags and roulette
/// probabilities every tour needs. One scratch serves any number of
/// sequential constructions (each resets it), so a colony — or one worker
/// thread of a parallel colony — allocates these buffers once instead of
/// once per ant.
#[derive(Debug, Default, Clone)]
pub struct TourScratch {
    visited: Vec<bool>,
    prob: Vec<f64>,
}

impl TourScratch {
    /// Scratch sized for `n` cities and candidate depth `nn`.
    pub fn new(n: usize, nn: usize) -> Self {
        TourScratch { visited: vec![false; n], prob: vec![0.0; n.max(nn)] }
    }

    fn reset(&mut self, n: usize, nn: usize) {
        self.visited.clear();
        self.visited.resize(n, false);
        let want = n.max(nn);
        if self.prob.len() < want {
            self.prob.resize(want, 0.0);
        }
    }
}

/// Per-phase operation counters of the last iteration.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseCounters {
    /// `compute_choice_information` (the "Choice kernel" equivalent).
    pub choice: OpCounter,
    /// Tour construction for all `m` ants.
    pub tour: OpCounter,
    /// Pheromone evaporation + deposit.
    pub update: OpCounter,
}

/// One iteration's outcome.
#[derive(Debug, Clone)]
pub struct IterationReport {
    /// Best tour length found this iteration.
    pub iter_best: u64,
    /// Best tour length found so far.
    pub best_so_far: u64,
    /// Operation counters of this iteration.
    pub counters: PhaseCounters,
}

/// The sequential Ant System.
pub struct AntSystem<'a> {
    inst: &'a TspInstance,
    params: AcoParams,
    n: usize,
    m: usize,
    /// Pheromone matrix, `f64` like ACOTSP.
    tau: Vec<f64>,
    /// Heuristic matrix `1/d`.
    eta: Vec<f64>,
    /// `tau^alpha * eta^beta`, recomputed per iteration.
    choice: Vec<f64>,
    nn: std::sync::Arc<NearestNeighborLists>,
    rng: PmRng,
    best: Option<(Tour, u64)>,
    /// Initial pheromone level (`m / C_nn`).
    tau0: f64,
    /// Per-iteration local search (ACOTSP-style hybridisation).
    local_search: LocalSearch,
    ls_scope: LsScope,
    ls_scratch: LsScratch,
    ls_improvement: u64,
}

impl<'a> AntSystem<'a> {
    /// Set up the colony on `inst`, computing the nearest-neighbour lists
    /// and greedy-tour length from scratch.
    pub fn new(inst: &'a TspInstance, params: AcoParams) -> Self {
        let nn = NearestNeighborLists::build(inst.matrix(), params.nn_size)
            .expect("instance has >= 2 cities");
        let c_nn = nearest_neighbor_tour(inst.matrix(), 0).length(inst.matrix());
        Self::with_artifacts(inst, params, std::sync::Arc::new(nn), c_nn)
    }

    /// Set up the colony from precomputed, shared artifacts: `nn`
    /// candidate lists (depth ≥ `params.nn_size` is not required — the
    /// lists are used as given, and the `Arc` lets a batch of colonies
    /// share one allocation) and the nearest-neighbour tour length `c_nn`
    /// from city 0.
    /// The batch engine's artifact cache uses this to share the `O(n² log
    /// n)` list construction across jobs on the same instance.
    pub fn with_artifacts(
        inst: &'a TspInstance,
        params: AcoParams,
        nn: std::sync::Arc<NearestNeighborLists>,
        c_nn: u64,
    ) -> Self {
        let n = inst.n();
        let m = params.ants_for(n);
        let tau0 = m as f64 / c_nn as f64;
        let mut eta = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                let d = inst.dist(i, j);
                eta[i * n + j] = if d == 0 { 10.0 } else { 1.0 / d as f64 };
            }
        }
        let mut s = AntSystem {
            inst,
            n,
            m,
            tau: vec![tau0; n * n],
            eta,
            choice: vec![0.0; n * n],
            nn,
            rng: PmRng::new((params.seed % 0x7FFF_FFFF) as u32),
            best: None,
            tau0,
            local_search: LocalSearch::None,
            ls_scope: LsScope::IterationBest,
            ls_scratch: LsScratch::new(),
            ls_improvement: 0,
            params,
        };
        let mut scratch = OpCounter::default();
        s.compute_choice_info(&mut scratch);
        s
    }

    /// Number of cities.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of ants.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Initial pheromone level `m / C_nn`.
    pub fn tau0(&self) -> f64 {
        self.tau0
    }

    /// Pheromone matrix (row-major `n x n`).
    pub fn tau(&self) -> &[f64] {
        &self.tau
    }

    /// Best solution found so far.
    pub fn best(&self) -> Option<(&Tour, u64)> {
        self.best.as_ref().map(|(t, l)| (t, *l))
    }

    /// Parameters in use.
    pub fn params(&self) -> &AcoParams {
        &self.params
    }

    /// Configure the per-iteration local search: `ls` runs at each
    /// iteration boundary — after construction, before the pheromone
    /// update, so improved tours steer the deposit — on the tours `scope`
    /// selects. [`LocalSearch::PostPass`] does nothing here (it is an
    /// engine-level polish).
    pub fn set_local_search(&mut self, ls: LocalSearch, scope: LsScope) {
        self.local_search = ls;
        self.ls_scope = scope;
    }

    /// Total tour-length reduction attributable to the per-iteration
    /// local search so far.
    pub fn local_search_improvement(&self) -> u64 {
        self.ls_improvement
    }

    /// Apply the configured local search to `sols` in place (iteration
    /// best or every ant), keeping the reported lengths exact and
    /// accumulating the improvement telemetry. Deterministic — the
    /// passes use no RNG — so colony results stay a pure function of the
    /// seed. Public so the parallel colony loop ([`super::parallel`])
    /// shares the exact same semantics.
    pub fn apply_local_search(&mut self, sols: &mut [(Tour, u64)]) {
        let ls = self.local_search.per_iteration();
        if !ls.runs_per_iteration() || sols.is_empty() {
            return;
        }
        let AntSystem { inst, nn, ls_scratch, ls_improvement, ls_scope, .. } = self;
        let mut improve = |sol: &mut (Tour, u64)| {
            let gain = ls.improve(&mut sol.0, inst.matrix(), nn, ls_scratch);
            sol.1 -= gain;
            *ls_improvement += gain;
        };
        match ls_scope {
            LsScope::IterationBest => {
                let mut best = 0;
                for (k, sol) in sols.iter().enumerate() {
                    if sol.1 < sols[best].1 {
                        best = k;
                    }
                }
                improve(&mut sols[best]);
            }
            LsScope::AllAnts => sols.iter_mut().for_each(improve),
        }
    }

    /// Recompute `choice_info` from the current pheromone.
    fn compute_choice_info(&mut self, c: &mut OpCounter) {
        let (a, b) = (self.params.alpha as f64, self.params.beta as f64);
        for i in 0..self.n {
            for j in 0..self.n {
                let idx = i * self.n + j;
                self.choice[idx] = self.tau[idx].powf(a) * self.eta[idx].powf(b);
            }
        }
        let cells = (self.n * self.n) as u64;
        c.pow_calls += 2 * cells;
        c.flops += cells;
        c.loads += 2 * cells;
        c.stores += cells;
        c.alu += cells;
    }

    /// Construct one tour under `policy` with an explicit RNG stream,
    /// counting into `c`. Immutable on `self` so colonies can run ants
    /// concurrently (see [`super::parallel`]). Allocates fresh scratch;
    /// loops should use [`AntSystem::construct_one_with`] and reuse one
    /// [`TourScratch`] across ants.
    pub fn construct_one(
        &self,
        rng: &mut PmRng,
        policy: TourPolicy,
        c: &mut OpCounter,
    ) -> (Tour, u64) {
        let mut scratch = TourScratch::new(self.n, self.nn.depth());
        self.construct_one_with(&mut scratch, rng, policy, c)
    }

    /// [`AntSystem::construct_one`] against caller-owned scratch — the
    /// zero-allocation construction hot path (only the tour's own order
    /// vector is allocated, since it outlives the call).
    pub fn construct_one_with(
        &self,
        scratch: &mut TourScratch,
        rng: &mut PmRng,
        policy: TourPolicy,
        c: &mut OpCounter,
    ) -> (Tour, u64) {
        let n = self.n;
        scratch.reset(n, self.nn.depth());
        let TourScratch { visited, prob } = scratch;
        let mut order = Vec::with_capacity(n);

        let start = (rng.next_f64() * n as f64) as usize % n;
        c.rng += 1;
        visited[start] = true;
        order.push(start as u32);
        let mut cur = start;
        let mut len = 0u64;

        for _ in 1..n {
            let next = match policy {
                TourPolicy::FullProbabilistic => self.step_full(rng, cur, visited, prob, c),
                TourPolicy::NearestNeighborList => self.step_nn(rng, cur, visited, prob, c),
            };
            debug_assert!(!visited[next]);
            visited[next] = true;
            order.push(next as u32);
            len += self.inst.dist(cur, next) as u64;
            cur = next;
            c.alu += 4;
            c.stores += 2;
            c.loads += 1;
        }
        len += self.inst.dist(cur, start) as u64;
        (Tour::new_unchecked(order), len)
    }

    /// Random-proportional step over the full feasible neighbourhood
    /// (ACOTSP's fully probabilistic rule; two passes like the C code).
    fn step_full(
        &self,
        rng: &mut PmRng,
        cur: usize,
        visited: &[bool],
        prob: &mut [f64],
        c: &mut OpCounter,
    ) -> usize {
        let n = self.n;
        let row = &self.choice[cur * n..(cur + 1) * n];
        let mut sum = 0.0f64;
        for j in 0..n {
            let p = if visited[j] { 0.0 } else { row[j] };
            prob[j] = p;
            sum += p;
        }
        c.loads += 2 * n as u64;
        c.stores += n as u64;
        c.flops += n as u64;
        c.branches += n as u64;
        c.alu += n as u64;

        debug_assert!(sum > 0.0, "some city must remain feasible");
        let r = rng.next_f64() * sum;
        c.rng += 1;
        c.flops += 1;

        let mut cum = 0.0f64;
        let mut j = 0usize;
        loop {
            cum += prob[j];
            c.loads += 1;
            c.flops += 1;
            c.branches += 1;
            if cum >= r {
                break;
            }
            j += 1;
            if j == n {
                // Floating-point shortfall: take the last feasible city.
                j = (0..n).rfind(|&k| !visited[k]).expect("feasible city exists");
                break;
            }
        }
        if visited[j] {
            // Zero-probability cell hit by rounding; advance to feasible.
            j = (0..n)
                .find(|&k| !visited[k] && prob[k] > 0.0)
                .unwrap_or_else(|| (0..n).find(|&k| !visited[k]).expect("feasible city exists"));
        }
        j
    }

    /// Candidate-list step (ACOTSP `neighbour_choose_and_move_to_next`):
    /// roulette over the unvisited nearest neighbours, falling back to the
    /// best `choice_info` city when all candidates are exhausted.
    fn step_nn(
        &self,
        rng: &mut PmRng,
        cur: usize,
        visited: &[bool],
        prob: &mut [f64],
        c: &mut OpCounter,
    ) -> usize {
        let n = self.n;
        let nn = self.nn.depth();
        let cands = self.nn.neighbors(cur);
        let row = &self.choice[cur * n..(cur + 1) * n];

        let mut sum = 0.0f64;
        for (k, &cand) in cands.iter().enumerate() {
            let p = if visited[cand as usize] { 0.0 } else { row[cand as usize] };
            prob[k] = p;
            sum += p;
        }
        c.loads += 3 * nn as u64;
        c.stores += nn as u64;
        c.flops += nn as u64;
        c.branches += nn as u64;
        c.alu += nn as u64;

        if sum <= 0.0 {
            // All candidates visited: deterministic best choice over all
            // cities (the divergent fallback path on the GPU).
            let mut best = usize::MAX;
            let mut best_v = f64::NEG_INFINITY;
            for j in 0..n {
                if !visited[j] && row[j] > best_v {
                    best_v = row[j];
                    best = j;
                }
            }
            c.loads += 2 * n as u64;
            c.branches += n as u64;
            c.alu += n as u64;
            return best;
        }

        let r = rng.next_f64() * sum;
        c.rng += 1;
        c.flops += 1;
        let mut cum = 0.0f64;
        let mut k = 0usize;
        loop {
            cum += prob[k];
            c.loads += 1;
            c.flops += 1;
            c.branches += 1;
            if cum >= r || k == nn - 1 {
                break;
            }
            k += 1;
        }
        // Guard against landing on a zero-probability candidate.
        if prob[k] == 0.0 {
            k = (0..nn).find(|&q| prob[q] > 0.0).expect("sum > 0 implies a candidate");
        }
        cands[k] as usize
    }

    /// Construct tours for the whole colony from the colony's own stream.
    pub fn construct_solutions(
        &mut self,
        policy: TourPolicy,
        c: &mut OpCounter,
    ) -> Vec<(Tour, u64)> {
        let mut rng = self.rng.clone();
        let mut scratch = TourScratch::new(self.n, self.nn.depth());
        let sols = (0..self.m)
            .map(|_| self.construct_one_with(&mut scratch, &mut rng, policy, c))
            .collect();
        self.rng = rng;
        sols
    }

    /// Construct one tour from a derived seed (parallel colonies give every
    /// ant its own decorrelated stream so results are thread-count
    /// independent).
    pub fn construct_with_seed(&self, ant_seed: u32, policy: TourPolicy) -> (Tour, u64) {
        let mut scratch = TourScratch::new(self.n, self.nn.depth());
        self.construct_with_seed_in(&mut scratch, ant_seed, policy)
    }

    /// [`AntSystem::construct_with_seed`] against caller-owned scratch
    /// (each parallel worker reuses one scratch across its ants).
    pub fn construct_with_seed_in(
        &self,
        scratch: &mut TourScratch,
        ant_seed: u32,
        policy: TourPolicy,
    ) -> (Tour, u64) {
        let mut rng = PmRng::new(ant_seed);
        let mut c = OpCounter::default();
        self.construct_one_with(scratch, &mut rng, policy, &mut c)
    }

    /// Evaporate and deposit (Equations 2–4 of the paper).
    pub fn update_pheromone(&mut self, sols: &[(Tour, u64)], c: &mut OpCounter) {
        let n = self.n;
        let keep = 1.0 - self.params.rho as f64;
        for t in self.tau.iter_mut() {
            *t *= keep;
        }
        let cells = (n * n) as u64;
        c.loads += cells;
        c.stores += cells;
        c.flops += cells;

        for (tour, len) in sols {
            let dep = 1.0 / *len as f64;
            let order = tour.order();
            for k in 0..n {
                let i = order[k] as usize;
                let j = order[(k + 1) % n] as usize;
                self.tau[i * n + j] += dep;
                self.tau[j * n + i] += dep;
            }
            let e = n as u64;
            c.loads += 4 * e;
            c.stores += 2 * e;
            c.flops += 2 * e;
            c.alu += 4 * e;
        }
    }

    /// Evaporate all trails by `(1 - rho)` (Equation 2 alone). Building
    /// block for the elitist / rank-based variants.
    pub fn evaporate(&mut self, c: &mut OpCounter) {
        let keep = 1.0 - self.params.rho as f64;
        for t in self.tau.iter_mut() {
            *t *= keep;
        }
        let cells = (self.n * self.n) as u64;
        c.loads += cells;
        c.stores += cells;
        c.flops += cells;
    }

    /// Deposit `amount` on every edge of `tour`, both directions.
    pub fn deposit_weighted(&mut self, tour: &Tour, amount: f64, c: &mut OpCounter) {
        let n = self.n;
        for k in 0..n {
            let i = tour.order()[k] as usize;
            let j = tour.order()[(k + 1) % n] as usize;
            self.tau[i * n + j] += amount;
            self.tau[j * n + i] += amount;
        }
        let e = n as u64;
        c.loads += 2 * e;
        c.stores += 2 * e;
        c.flops += 2 * e;
        c.alu += 4 * e;
    }

    /// Recompute `choice_info` after custom pheromone edits.
    pub fn refresh_choice(&mut self, c: &mut OpCounter) {
        self.compute_choice_info(c);
    }

    /// One full AS iteration: choice info, construction, local search
    /// (when configured), update.
    pub fn iterate(&mut self, policy: TourPolicy) -> IterationReport {
        self.iterate_dynamics(policy, None).0
    }

    /// [`iterate`](Self::iterate), additionally measuring search dynamics
    /// ([`aco_obs::RawDynamics`]: tour-length moments over the colony plus
    /// trail entropy and λ-branching at the iteration boundary) when a
    /// config is supplied — the O(n²) trail scans cost nothing when off.
    pub fn iterate_dynamics(
        &mut self,
        policy: TourPolicy,
        dynamics: Option<&aco_obs::DynamicsConfig>,
    ) -> (IterationReport, Option<aco_obs::RawDynamics>) {
        let mut counters = PhaseCounters::default();
        self.compute_choice_info(&mut counters.choice);
        let mut sols = self.construct_solutions(policy, &mut counters.tour);
        self.apply_local_search(&mut sols);
        let iter_best = sols.iter().map(|&(_, l)| l).min().expect("m >= 1 ants");
        let best_tour = sols.iter().find(|&&(_, l)| l == iter_best).expect("found above");
        if self.best.as_ref().is_none_or(|&(_, b)| iter_best < b) {
            self.best = Some((best_tour.0.clone(), iter_best));
        }
        self.update_pheromone(&sols, &mut counters.update);
        let raw = dynamics.map(|cfg| {
            let lens: Vec<u64> = sols.iter().map(|&(_, l)| l).collect();
            aco_obs::dynamics::compute_raw(cfg, &lens, &self.tau, self.n)
        });
        let rep = IterationReport {
            iter_best,
            best_so_far: self.best.as_ref().map(|&(_, l)| l).expect("just set"),
            counters,
        };
        (rep, raw)
    }

    /// Run `iters` iterations; returns the best length.
    pub fn run(&mut self, iters: usize, policy: TourPolicy) -> u64 {
        let mut last = u64::MAX;
        for _ in 0..iters {
            last = self.iterate(policy).best_so_far;
        }
        last
    }

    /// Ctx-driven run: up to `iterations` iterations, checking
    /// [`SolveCtx::stop_reason`](crate::lifecycle::SolveCtx) at every
    /// iteration boundary and emitting one iteration-best event per
    /// completed iteration. `on_iter` sees each [`IterationReport`]
    /// (callers price the iteration from its counters).
    pub fn run_ctx(
        &mut self,
        policy: TourPolicy,
        iterations: usize,
        ctx: &crate::lifecycle::SolveCtx,
        mut on_iter: impl FnMut(&IterationReport),
    ) -> crate::lifecycle::RunOutcome {
        crate::lifecycle::drive_dynamics(iterations, ctx, |_| {
            let (rep, raw) = self.iterate_dynamics(policy, ctx.dynamics());
            on_iter(&rep);
            (rep.iter_best, rep.best_so_far, raw)
        })
    }
}

/// Analytic counter models for instance sizes too large to execute, with
/// the expectations documented (and validated against measured counters in
/// the tests): a full-probabilistic roulette scans `~n/2` cells, a
/// candidate roulette `~nn/2`, and the NN fallback triggers on a fixed
/// fraction of steps (`FALLBACK_RATE`, measured on the paper's instance
/// family).
pub mod model {
    use super::OpCounter;

    /// Fraction of construction steps whose candidate list is exhausted
    /// (measured ≈ 0.12–0.2 on uniform instances with nn = 30; see tests).
    pub const FALLBACK_RATE: f64 = 0.15;

    /// Counters of `compute_choice_info` for an `n`-city instance.
    pub fn choice_counters(n: usize) -> OpCounter {
        let cells = (n * n) as u64;
        OpCounter {
            pow_calls: 2 * cells,
            flops: cells,
            loads: 2 * cells,
            stores: cells,
            alu: cells,
            ..Default::default()
        }
    }

    /// Counters of full-probabilistic construction for `m` ants.
    pub fn full_tour_counters(n: usize, m: usize) -> OpCounter {
        let steps = (m * (n - 1)) as u64;
        let n64 = n as u64;
        let scan = n64 / 2; // expected roulette trips
        OpCounter {
            loads: steps * (2 * n64 + scan + 1) + m as u64 * (n as u64 - 1),
            stores: steps * (n64 + 2),
            flops: steps * (n64 + scan + 1),
            branches: steps * (n64 + scan),
            alu: steps * (n64 + 4),
            rng: steps + m as u64,
            pow_calls: 0,
        }
    }

    /// Counters of candidate-list construction for `m` ants.
    pub fn nn_tour_counters(n: usize, m: usize, nn: usize) -> OpCounter {
        let steps = (m * (n - 1)) as u64;
        let nn64 = nn as u64;
        let n64 = n as u64;
        let scan = nn64 / 2;
        let fb = (steps as f64 * FALLBACK_RATE) as u64;
        OpCounter {
            loads: steps * (3 * nn64 + 1) + (steps - fb) * scan + fb * 2 * n64 + steps,
            stores: steps * (nn64 + 2),
            flops: steps * (nn64 + 1) + (steps - fb) * scan,
            branches: steps * nn64 + (steps - fb) * scan + fb * n64,
            alu: steps * (nn64 + 4) + fb * n64,
            rng: steps - fb + m as u64,
            pow_calls: 0,
        }
    }

    /// Counters of the pheromone update for `m` ants on `n` cities.
    pub fn update_counters(n: usize, m: usize) -> OpCounter {
        let cells = (n * n) as u64;
        let e = (m * n) as u64;
        OpCounter {
            loads: cells + 4 * e,
            stores: cells + 2 * e,
            flops: cells + 2 * e,
            alu: 4 * e,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aco_tsp::generator::uniform_random;

    fn small_instance(n: usize, seed: u64) -> aco_tsp::TspInstance {
        uniform_random("t", n, 1000.0, seed)
    }

    fn quick_params(seed: u64) -> AcoParams {
        AcoParams::default().nn(15).seed(seed)
    }

    #[test]
    fn tours_are_valid_under_both_policies() {
        let inst = small_instance(40, 1);
        for policy in [TourPolicy::FullProbabilistic, TourPolicy::NearestNeighborList] {
            let mut aco = AntSystem::new(&inst, quick_params(3).ants(10));
            let mut c = OpCounter::default();
            let sols = aco.construct_solutions(policy, &mut c);
            assert_eq!(sols.len(), 10);
            for (t, l) in &sols {
                assert!(t.is_valid());
                assert_eq!(*l, t.length(inst.matrix()), "reported length must be exact");
            }
        }
    }

    #[test]
    fn search_improves_over_iterations() {
        let inst = small_instance(60, 2);
        let mut aco = AntSystem::new(&inst, quick_params(7));
        let first = aco.iterate(TourPolicy::NearestNeighborList).iter_best;
        let final_best = aco.run(30, TourPolicy::NearestNeighborList);
        assert!(
            final_best <= first,
            "30 iterations should not be worse than iteration 1 ({final_best} vs {first})"
        );
        // And it should beat a random tour by a wide margin.
        let mut rng = rand::thread_rng();
        let random_len = Tour::random(60, &mut rng).length(inst.matrix());
        assert!(final_best < random_len);
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = small_instance(30, 3);
        let run = |seed| {
            let mut aco = AntSystem::new(&inst, quick_params(seed).ants(8));
            aco.run(5, TourPolicy::NearestNeighborList)
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12)); // overwhelmingly likely to differ
    }

    #[test]
    fn pheromone_stays_positive_and_symmetric() {
        let inst = small_instance(25, 4);
        let mut aco = AntSystem::new(&inst, quick_params(5).ants(6));
        for _ in 0..10 {
            aco.iterate(TourPolicy::NearestNeighborList);
        }
        let n = aco.n();
        for i in 0..n {
            for j in 0..n {
                let t = aco.tau()[i * n + j];
                assert!(t > 0.0, "tau[{i}][{j}] = {t}");
                let t2 = aco.tau()[j * n + i];
                assert!((t - t2).abs() < 1e-12 * t.max(1.0), "asymmetry at ({i},{j})");
            }
        }
    }

    #[test]
    fn evaporation_contracts_unvisited_edges() {
        let inst = small_instance(20, 5);
        let mut aco = AntSystem::new(&inst, quick_params(6).ants(4));
        let tau_before = aco.tau0();
        let mut c = OpCounter::default();
        // Update with an empty solution set: pure evaporation.
        aco.update_pheromone(&[], &mut c);
        let expect = tau_before * (1.0 - 0.5);
        for &t in aco.tau() {
            assert!((t - expect).abs() < 1e-15);
        }
    }

    #[test]
    fn deposit_adds_exactly_one_over_c_per_direction() {
        let inst = small_instance(10, 6);
        let mut aco = AntSystem::new(&inst, quick_params(7).ants(1).rho(1.0));
        let tour = Tour::identity(10);
        let len = tour.length(inst.matrix());
        let mut c = OpCounter::default();
        // rho = 1 wipes old pheromone, leaving exactly the deposits.
        aco.update_pheromone(&[(tour, len)], &mut c);
        let n = 10;
        let dep = 1.0 / len as f64;
        for k in 0..n {
            let i = k;
            let j = (k + 1) % n;
            assert!((aco.tau()[i * n + j] - dep).abs() < 1e-18);
            assert!((aco.tau()[j * n + i] - dep).abs() < 1e-18);
        }
        // A non-tour edge has zero pheromone after rho = 1 evaporation.
        assert_eq!(aco.tau()[2], 0.0); // edge (0,2) not in the identity tour
    }

    #[test]
    fn counter_models_match_measurement() {
        let inst = small_instance(120, 8);
        let mut aco = AntSystem::new(&inst, AcoParams::default().nn(20).seed(42));
        let rep = aco.iterate(TourPolicy::FullProbabilistic);
        let measured = rep.counters.tour;
        let modeled = model::full_tour_counters(120, 120);
        for (got, want, what) in [
            (measured.loads, modeled.loads, "loads"),
            (measured.flops, modeled.flops, "flops"),
            (measured.rng, modeled.rng, "rng"),
        ] {
            let rel = (got as f64 - want as f64).abs() / want as f64;
            assert!(rel < 0.25, "{what}: measured {got} vs modeled {want} ({rel:.2})");
        }

        let mut aco2 = AntSystem::new(&inst, AcoParams::default().nn(20).seed(42));
        let rep2 = aco2.iterate(TourPolicy::NearestNeighborList);
        let measured2 = rep2.counters.tour;
        let modeled2 = model::nn_tour_counters(120, 120, 20);
        let rel = (measured2.loads as f64 - modeled2.loads as f64).abs() / modeled2.loads as f64;
        assert!(rel < 0.35, "nn loads: {} vs {}", measured2.loads, modeled2.loads);

        let measured_u = rep.counters.update;
        let modeled_u = model::update_counters(120, 120);
        assert_eq!(measured_u.stores, modeled_u.stores);
        assert_eq!(measured_u.loads, modeled_u.loads);
    }

    /// When the candidate list covers *all* unvisited cities (depth
    /// `n-1`), the NN-list roulette draws from exactly the same
    /// probability distribution as the full roulette — the lists only
    /// reorder the cumulative scan. Pin that equivalence empirically:
    /// identical RNG streams through both steps must select each city
    /// with matching frequency.
    #[test]
    fn candidate_roulette_matches_full_roulette_when_list_covers_all() {
        let n = 10;
        let inst = small_instance(n, 12);
        // Depth n-1: every other city is a candidate of every city.
        let mut aco = AntSystem::new(&inst, AcoParams::default().nn(n - 1).seed(3).ants(4));
        // A couple of iterations so choice_info is non-uniform.
        aco.iterate(TourPolicy::NearestNeighborList);
        aco.iterate(TourPolicy::NearestNeighborList);

        let cur = 0usize;
        let mut visited = vec![false; n];
        visited[cur] = true;
        visited[4] = true;
        visited[7] = true;

        let samples = 4000u32;
        let mut full_counts = vec![0u32; n];
        let mut nn_counts = vec![0u32; n];
        let mut prob = vec![0.0f64; n];
        // Park–Miller's first draws from consecutive small seeds are
        // heavily correlated; burn a few to decorrelate the streams.
        let warmed = |seed: u32| {
            let mut rng = aco_simt::rng::PmRng::new(seed);
            for _ in 0..8 {
                rng.next_f64();
            }
            rng
        };
        for s in 1..=samples {
            let mut c = OpCounter::default();
            full_counts[aco.step_full(&mut warmed(s), cur, &visited, &mut prob, &mut c)] += 1;
            nn_counts[aco.step_nn(&mut warmed(s), cur, &visited, &mut prob, &mut c)] += 1;
        }
        for city in 0..n {
            let diff = (full_counts[city] as f64 - nn_counts[city] as f64).abs() / samples as f64;
            assert!(
                diff < 0.05,
                "city {city}: full {} vs nn {} over {samples} draws",
                full_counts[city],
                nn_counts[city]
            );
        }
        assert_eq!(full_counts[cur], 0, "visited city must never be selected");
        assert_eq!(full_counts[4] + nn_counts[4] + full_counts[7] + nn_counts[7], 0);
    }

    #[test]
    fn choice_counters_are_exact() {
        let inst = small_instance(50, 9);
        let mut aco = AntSystem::new(&inst, quick_params(1).ants(5));
        let rep = aco.iterate(TourPolicy::NearestNeighborList);
        assert_eq!(rep.counters.choice, model::choice_counters(50));
    }

    #[test]
    fn cpu_model_prices_phases_sensibly() {
        let inst = small_instance(100, 10);
        let mut aco = AntSystem::new(&inst, AcoParams::default().nn(20).seed(2));
        let rep = aco.iterate(TourPolicy::FullProbabilistic);
        let model = super::super::counter::CpuModel::default();
        let t_tour = model.time_ms(&rep.counters.tour);
        let t_update = model.time_ms(&rep.counters.update);
        assert!(t_tour > 0.0 && t_update > 0.0);
        // Construction dominates update for AS (paper Section V).
        assert!(t_tour > t_update);
    }
}
