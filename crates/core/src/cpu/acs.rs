//! Ant Colony System (ACS) — the variant the paper's conclusions name as
//! the next implementation target ("We will also implement other ACO
//! algorithms, such as the Ant Colony System").
//!
//! Differences from the Ant System (Dorigo & Gambardella, 1997):
//!
//! * *pseudo-random proportional rule*: with probability `q0` an ant takes
//!   the best candidate (exploitation), otherwise the usual roulette,
//! * *local pheromone update*: every crossed edge decays toward `tau0`
//!   immediately (`tau = (1-xi) tau + xi tau0`),
//! * *global update by the best-so-far ant only*, with
//!   `tau = (1-rho) tau + rho/C_bs` on its edges,
//! * `tau0 = 1 / (n * C_nn)`.

use aco_localsearch::{LocalSearch, LsScope, LsScratch};
use aco_simt::rng::PmRng;
use aco_tsp::{nearest_neighbor_tour, NearestNeighborLists, Tour, TspInstance};

use crate::params::AcoParams;

/// ACS-specific parameters on top of [`AcoParams`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcsParams {
    /// Exploitation probability (book default 0.9).
    pub q0: f64,
    /// Local evaporation (book default 0.1).
    pub xi: f64,
}

impl Default for AcsParams {
    fn default() -> Self {
        AcsParams { q0: 0.9, xi: 0.1 }
    }
}

/// The Ant Colony System solver.
pub struct AntColonySystem<'a> {
    inst: &'a TspInstance,
    params: AcoParams,
    acs: AcsParams,
    n: usize,
    m: usize,
    tau: Vec<f64>,
    /// `eta^beta`, precomputed once — ACS evaluates edge desirability on
    /// every candidate inspection, so hoisting the `powf` out of the
    /// construction loop removes the dominant transcendental traffic.
    eta_pow: Vec<f64>,
    nn: std::sync::Arc<NearestNeighborLists>,
    rng: PmRng,
    tau0: f64,
    best: Option<(Tour, u64)>,
    /// Best length found in the most recent iteration (`u64::MAX` before
    /// the first) — the iteration-best stream for lifecycle observers.
    last_iter_best: u64,
    /// Reusable per-ant visited flags (construction scratch).
    visited_scratch: Vec<bool>,
    /// Per-iteration local search (ACOTSP-style hybridisation).
    local_search: LocalSearch,
    ls_scope: LsScope,
    ls_scratch: LsScratch,
    ls_improvement: u64,
}

impl<'a> AntColonySystem<'a> {
    /// Set up an ACS colony. ACS traditionally uses few ants (book: 10).
    pub fn new(inst: &'a TspInstance, params: AcoParams, acs: AcsParams) -> Self {
        let nn = NearestNeighborLists::build(inst.matrix(), params.nn_size)
            .expect("instance has >= 2 cities");
        let c_nn = nearest_neighbor_tour(inst.matrix(), 0).length(inst.matrix());
        Self::with_artifacts(inst, params, acs, std::sync::Arc::new(nn), c_nn)
    }

    /// Set up an ACS colony from precomputed artifacts (shared NN lists
    /// and greedy-tour length); see `AntSystem::with_artifacts`.
    pub fn with_artifacts(
        inst: &'a TspInstance,
        params: AcoParams,
        acs: AcsParams,
        nn: std::sync::Arc<NearestNeighborLists>,
        c_nn: u64,
    ) -> Self {
        let n = inst.n();
        let m = params.num_ants.unwrap_or(10);
        let tau0 = 1.0 / (n as f64 * c_nn as f64);
        let beta = params.beta as f64;
        let mut eta_pow = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                let d = inst.dist(i, j);
                let eta = if d == 0 { 10.0 } else { 1.0 / d as f64 };
                eta_pow[i * n + j] = eta.powf(beta);
            }
        }
        AntColonySystem {
            inst,
            n,
            m,
            tau: vec![tau0; n * n],
            eta_pow,
            nn,
            rng: PmRng::new((params.seed % 0x7FFF_FFFF) as u32),
            tau0,
            best: None,
            last_iter_best: u64::MAX,
            visited_scratch: vec![false; n],
            local_search: LocalSearch::None,
            ls_scope: LsScope::IterationBest,
            ls_scratch: LsScratch::new(),
            ls_improvement: 0,
            params,
            acs,
        }
    }

    /// Configure the per-iteration local search (see
    /// [`crate::AntSystem::set_local_search`]). Under
    /// [`LsScope::AllAnts`] each ant's tour is improved right after its
    /// construction; the local pheromone trail it laid while building
    /// stays as built (only the result steers best tracking and the
    /// global update).
    pub fn set_local_search(&mut self, ls: LocalSearch, scope: LsScope) {
        self.local_search = ls;
        self.ls_scope = scope;
    }

    /// Total tour-length reduction attributable to local search so far.
    pub fn local_search_improvement(&self) -> u64 {
        self.ls_improvement
    }

    fn ls_improve(&mut self, tour: &mut Tour, len: &mut u64) {
        let ls = self.local_search.per_iteration();
        if !ls.runs_per_iteration() {
            return;
        }
        let AntColonySystem { inst, nn, ls_scratch, ls_improvement, .. } = self;
        let gain = ls.improve(tour, inst.matrix(), nn, ls_scratch);
        *len -= gain;
        *ls_improvement += gain;
    }

    /// Best solution found so far.
    pub fn best(&self) -> Option<(&Tour, u64)> {
        self.best.as_ref().map(|(t, l)| (t, *l))
    }

    /// `tau0 = 1/(n * C_nn)`.
    pub fn tau0(&self) -> f64 {
        self.tau0
    }

    /// Pheromone matrix.
    pub fn tau(&self) -> &[f64] {
        &self.tau
    }

    #[inline]
    fn value(&self, i: usize, j: usize) -> f64 {
        // ACS uses alpha = 1 by definition: tau * eta^beta (precomputed).
        self.tau[i * self.n + j] * self.eta_pow[i * self.n + j]
    }

    fn step(&mut self, cur: usize, visited: &[bool]) -> usize {
        let cands = self.nn.neighbors(cur);
        let q: f64 = self.rng.next_f64();
        // Gather feasible candidates and their values.
        let mut vals = [0.0f64; 64];
        let mut sum = 0.0;
        let mut any = false;
        for (k, &cand) in cands.iter().enumerate() {
            let v = if visited[cand as usize] { 0.0 } else { self.value(cur, cand as usize) };
            vals[k.min(63)] = v;
            sum += v;
            any |= v > 0.0;
        }
        if !any {
            // Fallback: best over all unvisited cities.
            let mut best = usize::MAX;
            let mut best_v = f64::NEG_INFINITY;
            for (j, &seen) in visited.iter().enumerate().take(self.n) {
                if !seen {
                    let v = self.value(cur, j);
                    if v > best_v {
                        best_v = v;
                        best = j;
                    }
                }
            }
            return best;
        }
        if q < self.acs.q0 {
            // Exploitation: argmax over candidates.
            let mut best_k = 0;
            for k in 0..cands.len() {
                if vals[k.min(63)] > vals[best_k.min(63)] {
                    best_k = k;
                }
            }
            cands[best_k] as usize
        } else {
            // Biased exploration: roulette.
            let r = self.rng.next_f64() * sum;
            let mut cum = 0.0;
            for (k, &cand) in cands.iter().enumerate() {
                cum += vals[k.min(63)];
                if cum >= r && vals[k.min(63)] > 0.0 {
                    return cand as usize;
                }
            }
            cands
                .iter()
                .enumerate()
                .rfind(|&(k, _)| vals[k.min(63)] > 0.0)
                .map(|(_, &c)| c as usize)
                .expect("sum > 0 implies a feasible candidate")
        }
    }

    fn construct_one(&mut self) -> (Tour, u64) {
        let n = self.n;
        let mut visited = std::mem::take(&mut self.visited_scratch);
        visited.clear();
        visited.resize(n, false);
        let mut order = Vec::with_capacity(n);
        let start = (self.rng.next_f64() * n as f64) as usize % n;
        visited[start] = true;
        order.push(start as u32);
        let (mut cur, mut len) = (start, 0u64);
        let xi = self.acs.xi;
        let tau0 = self.tau0;
        for _ in 1..n {
            let next = self.step(cur, &visited);
            visited[next] = true;
            order.push(next as u32);
            len += self.inst.dist(cur, next) as u64;
            // Local pheromone update on the crossed edge (both directions).
            for (a, b) in [(cur, next), (next, cur)] {
                let t = &mut self.tau[a * n + b];
                *t = (1.0 - xi) * *t + xi * tau0;
            }
            cur = next;
        }
        len += self.inst.dist(cur, start) as u64;
        self.visited_scratch = visited;
        (Tour::new_unchecked(order), len)
    }

    /// Best length found in the most recent [`AntColonySystem::iterate`]
    /// (`u64::MAX` before the first iteration).
    pub fn last_iter_best(&self) -> u64 {
        self.last_iter_best
    }

    /// One ACS iteration; returns the best-so-far length.
    pub fn iterate(&mut self) -> u64 {
        self.iterate_dynamics(None).0
    }

    /// [`iterate`](Self::iterate), additionally measuring search dynamics
    /// when a config is supplied. ACS constructs ants one at a time, so
    /// tour-length moments are accumulated in-stream
    /// ([`aco_obs::dynamics::compute_raw_from_moments`]); the O(n²) trail
    /// scans run only when `dynamics` is `Some`.
    pub fn iterate_dynamics(
        &mut self,
        dynamics: Option<&aco_obs::DynamicsConfig>,
    ) -> (u64, Option<aco_obs::RawDynamics>) {
        let all_ants = self.ls_scope == LsScope::AllAnts;
        let mut iter_best: Option<(Tour, u64)> = None;
        let (mut len_sum, mut len_sumsq) = (0.0f64, 0.0f64);
        for _ in 0..self.m {
            let (mut tour, mut len) = self.construct_one();
            if all_ants {
                self.ls_improve(&mut tour, &mut len);
            }
            len_sum += len as f64;
            len_sumsq += len as f64 * len as f64;
            if iter_best.as_ref().is_none_or(|&(_, b)| len < b) {
                iter_best = Some((tour, len));
            }
        }
        let (mut best_tour, mut best_len) = iter_best.expect("m >= 1 ants");
        if !all_ants {
            self.ls_improve(&mut best_tour, &mut best_len);
        }
        self.last_iter_best = best_len;
        if self.best.as_ref().is_none_or(|&(_, b)| best_len < b) {
            self.best = Some((best_tour, best_len));
        }
        // Global update: best-so-far ant only.
        let (tour, len) = self.best.as_ref().expect("m >= 1 ants ran").clone();
        let rho = self.params.rho as f64;
        let dep = rho / len as f64;
        let n = self.n;
        for k in 0..n {
            let i = tour.order()[k] as usize;
            let j = tour.order()[(k + 1) % n] as usize;
            for (a, b) in [(i, j), (j, i)] {
                let t = &mut self.tau[a * n + b];
                *t = (1.0 - rho) * *t + dep;
            }
        }
        let raw = dynamics.map(|cfg| {
            aco_obs::dynamics::compute_raw_from_moments(
                cfg,
                self.m as u64,
                len_sum,
                len_sumsq,
                &self.tau,
                self.n,
            )
        });
        (len, raw)
    }

    /// Run `iters` iterations; returns the best length.
    pub fn run(&mut self, iters: usize) -> u64 {
        let mut best = u64::MAX;
        for _ in 0..iters {
            best = self.iterate();
        }
        best
    }

    /// Ctx-driven run: cancellation/deadline checked at every iteration
    /// boundary; one iteration-best event emitted per iteration.
    pub fn run_ctx(
        &mut self,
        iterations: usize,
        ctx: &crate::lifecycle::SolveCtx,
    ) -> crate::lifecycle::RunOutcome {
        crate::lifecycle::drive_dynamics(iterations, ctx, |_| {
            let (best, raw) = self.iterate_dynamics(ctx.dynamics());
            (self.last_iter_best, best, raw)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aco_tsp::generator::uniform_random;

    #[test]
    fn acs_finds_valid_improving_tours() {
        let inst = uniform_random("acs", 50, 1000.0, 21);
        let mut acs =
            AntColonySystem::new(&inst, AcoParams::default().nn(15).seed(5), AcsParams::default());
        let first = acs.iterate();
        let last = acs.run(20);
        assert!(last <= first);
        let (tour, len) = acs.best().expect("ran");
        assert!(tour.is_valid());
        assert_eq!(len, tour.length(inst.matrix()));
    }

    #[test]
    fn local_update_pulls_towards_tau0() {
        let inst = uniform_random("acs", 30, 500.0, 22);
        let mut acs =
            AntColonySystem::new(&inst, AcoParams::default().nn(10).seed(1), AcsParams::default());
        acs.run(5);
        // Pheromone never drops below tau0 (local rule is a convex
        // combination with tau0; global adds on top).
        let lo = acs.tau0() * (1.0 - 1e-9);
        assert!(acs.tau().iter().all(|&t| t >= lo), "tau fell below tau0");
    }

    #[test]
    fn exploitation_dominates_with_q0_one() {
        let inst = uniform_random("acs", 25, 500.0, 23);
        // q0 = 1: fully greedy construction; two colonies with different
        // seeds still pick identical tours after the first iteration's
        // pheromone is laid (start cities differ, so compare validity only).
        let mut acs = AntColonySystem::new(
            &inst,
            AcoParams::default().nn(10).seed(3).ants(4),
            AcsParams { q0: 1.0, xi: 0.1 },
        );
        let len = acs.run(3);
        assert!(len > 0);
        assert!(acs.best().expect("ran").0.is_valid());
    }

    #[test]
    fn acs_beats_nearest_neighbor_eventually() {
        let inst = uniform_random("acs", 60, 1000.0, 24);
        let nn_len = aco_tsp::nearest_neighbor_tour(inst.matrix(), 0).length(inst.matrix());
        let mut acs =
            AntColonySystem::new(&inst, AcoParams::default().nn(20).seed(9), AcsParams::default());
        let best = acs.run(60);
        assert!(best <= nn_len, "ACS ({best}) should match or beat greedy NN ({nn_len})");
    }
}
