//! CPU-side algorithms: the sequential ACOTSP-style Ant System baseline the
//! paper measures against, its operation-counting cost model, a
//! multi-threaded colony, and the ACS / MMAS variants the paper names as
//! future work.

pub mod acs;
pub mod ant_system;
pub mod counter;
pub mod elitist;
pub mod mmas;
pub mod parallel;

pub use acs::{AcsParams, AntColonySystem};
pub use ant_system::{AntSystem, IterationReport, PhaseCounters, TourPolicy, TourScratch};
pub use counter::{CpuModel, OpCounter};
pub use elitist::{Elitism, ElitistAntSystem};
pub use mmas::{MaxMinAntSystem, MmasParams};
pub use parallel::{construct_parallel, iterate_parallel, run_parallel_ctx};
