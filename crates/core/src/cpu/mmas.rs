//! MAX-MIN Ant System (MMAS) — the second classic variant beyond AS,
//! mentioned in the paper's related work (Jiening et al. implemented MMAS
//! on a GPU) and covered here as an extension.
//!
//! Differences from the Ant System (Stützle & Hoos, 2000):
//!
//! * only the iteration-best (or periodically the best-so-far) ant
//!   deposits,
//! * pheromone is clamped to `[tau_min, tau_max]` with
//!   `tau_max = 1/(rho * C_best)` and `tau_min = tau_max / (2n)`,
//! * trails start at `tau_max` (optimistic initialisation),
//! * stagnation triggers a trail re-initialisation.

use aco_localsearch::{LocalSearch, LsScope, LsScratch};
use aco_simt::rng::PmRng;
use aco_tsp::{nearest_neighbor_tour, NearestNeighborLists, Tour, TspInstance};

use super::counter::OpCounter;
use crate::params::AcoParams;

/// MMAS-specific knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmasParams {
    /// Every `gb_every` iterations the best-so-far ant deposits instead of
    /// the iteration-best one (0 = never).
    pub gb_every: usize,
    /// Re-initialise trails after this many iterations without improvement
    /// (0 = never).
    pub restart_after: usize,
}

impl Default for MmasParams {
    fn default() -> Self {
        MmasParams { gb_every: 25, restart_after: 100 }
    }
}

/// The MAX-MIN Ant System solver.
pub struct MaxMinAntSystem<'a> {
    inst: &'a TspInstance,
    params: AcoParams,
    mmas: MmasParams,
    n: usize,
    m: usize,
    tau: Vec<f64>,
    eta: Vec<f64>,
    choice: Vec<f64>,
    nn: std::sync::Arc<NearestNeighborLists>,
    rng: PmRng,
    tau_max: f64,
    tau_min: f64,
    best: Option<(Tour, u64)>,
    /// Best length found in the most recent iteration (`u64::MAX` before
    /// the first) — the iteration-best stream for lifecycle observers.
    last_iter_best: u64,
    iterations: usize,
    since_improvement: usize,
    restarts: u64,
    /// Reusable construction scratch (visited flags + roulette slots).
    visited_scratch: Vec<bool>,
    prob_scratch: Vec<f64>,
    /// Per-iteration local search (ACOTSP-style hybridisation).
    local_search: LocalSearch,
    ls_scope: LsScope,
    ls_scratch: LsScratch,
    ls_improvement: u64,
}

impl<'a> MaxMinAntSystem<'a> {
    /// Set up an MMAS colony.
    pub fn new(inst: &'a TspInstance, params: AcoParams, mmas: MmasParams) -> Self {
        let nn = NearestNeighborLists::build(inst.matrix(), params.nn_size)
            .expect("instance has >= 2 cities");
        let c_nn = nearest_neighbor_tour(inst.matrix(), 0).length(inst.matrix());
        Self::with_artifacts(inst, params, mmas, std::sync::Arc::new(nn), c_nn)
    }

    /// Set up an MMAS colony from precomputed artifacts (shared NN lists
    /// and greedy-tour length); see `AntSystem::with_artifacts`.
    pub fn with_artifacts(
        inst: &'a TspInstance,
        params: AcoParams,
        mmas: MmasParams,
        nn: std::sync::Arc<NearestNeighborLists>,
        c_nn: u64,
    ) -> Self {
        let n = inst.n();
        let m = params.ants_for(n);
        let rho = params.rho as f64;
        let tau_max = 1.0 / (rho * c_nn as f64);
        let tau_min = tau_max / (2.0 * n as f64);
        let mut eta = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                let d = inst.dist(i, j);
                eta[i * n + j] = if d == 0 { 10.0 } else { 1.0 / d as f64 };
            }
        }
        let nn_depth = nn.depth();
        let mut s = MaxMinAntSystem {
            inst,
            n,
            m,
            tau: vec![tau_max; n * n],
            eta,
            choice: vec![0.0; n * n],
            nn,
            rng: PmRng::new((params.seed % 0x7FFF_FFFF) as u32),
            tau_max,
            tau_min,
            best: None,
            last_iter_best: u64::MAX,
            iterations: 0,
            since_improvement: 0,
            restarts: 0,
            visited_scratch: vec![false; n],
            prob_scratch: vec![0.0; nn_depth],
            local_search: LocalSearch::None,
            ls_scope: LsScope::IterationBest,
            ls_scratch: LsScratch::new(),
            ls_improvement: 0,
            params,
            mmas,
        };
        s.recompute_choice();
        s
    }

    /// Current `[tau_min, tau_max]` bounds.
    pub fn bounds(&self) -> (f64, f64) {
        (self.tau_min, self.tau_max)
    }

    /// Best solution found so far.
    pub fn best(&self) -> Option<(&Tour, u64)> {
        self.best.as_ref().map(|(t, l)| (t, *l))
    }

    /// Pheromone matrix.
    pub fn tau(&self) -> &[f64] {
        &self.tau
    }

    fn recompute_choice(&mut self) {
        let (a, b) = (self.params.alpha as f64, self.params.beta as f64);
        for i in 0..self.n * self.n {
            self.choice[i] = self.tau[i].powf(a) * self.eta[i].powf(b);
        }
    }

    fn construct_one(&mut self) -> (Tour, u64) {
        // Candidate-list construction, same rule as the Ant System.
        let n = self.n;
        let nn_depth = self.nn.depth();
        let mut visited = std::mem::take(&mut self.visited_scratch);
        visited.clear();
        visited.resize(n, false);
        let mut prob = std::mem::take(&mut self.prob_scratch);
        prob.clear();
        prob.resize(nn_depth, 0.0);
        let mut order = Vec::with_capacity(n);
        let start = (self.rng.next_f64() * n as f64) as usize % n;
        visited[start] = true;
        order.push(start as u32);
        let (mut cur, mut len) = (start, 0u64);
        for _ in 1..n {
            let cands = self.nn.neighbors(cur);
            let row = &self.choice[cur * n..(cur + 1) * n];
            let mut sum = 0.0;
            for (k, &cand) in cands.iter().enumerate() {
                let p = if visited[cand as usize] { 0.0 } else { row[cand as usize] };
                prob[k] = p;
                sum += p;
            }
            let next = if sum > 0.0 {
                let r = self.rng.next_f64() * sum;
                let mut cum = 0.0;
                let mut pick = nn_depth - 1;
                for (k, &p) in prob.iter().enumerate() {
                    cum += p;
                    if cum >= r && p > 0.0 {
                        pick = k;
                        break;
                    }
                }
                if prob[pick] == 0.0 {
                    pick = (0..nn_depth).find(|&q| prob[q] > 0.0).expect("sum > 0");
                }
                cands[pick] as usize
            } else {
                let mut best = usize::MAX;
                let mut best_v = f64::NEG_INFINITY;
                for j in 0..n {
                    if !visited[j] && row[j] > best_v {
                        best_v = row[j];
                        best = j;
                    }
                }
                best
            };
            visited[next] = true;
            order.push(next as u32);
            len += self.inst.dist(cur, next) as u64;
            cur = next;
        }
        len += self.inst.dist(cur, start) as u64;
        self.visited_scratch = visited;
        self.prob_scratch = prob;
        (Tour::new_unchecked(order), len)
    }

    fn clamp(&mut self) {
        for t in self.tau.iter_mut() {
            *t = t.clamp(self.tau_min, self.tau_max);
        }
    }

    /// Configure the per-iteration local search (see
    /// [`crate::AntSystem::set_local_search`]). The improved
    /// iteration-best tour is what deposits — and what tightens the
    /// `[tau_min, tau_max]` bounds.
    pub fn set_local_search(&mut self, ls: LocalSearch, scope: LsScope) {
        self.local_search = ls;
        self.ls_scope = scope;
    }

    /// Total tour-length reduction attributable to local search so far.
    pub fn local_search_improvement(&self) -> u64 {
        self.ls_improvement
    }

    fn ls_improve(&mut self, tour: &mut Tour, len: &mut u64) {
        let ls = self.local_search.per_iteration();
        if !ls.runs_per_iteration() {
            return;
        }
        let MaxMinAntSystem { inst, nn, ls_scratch, ls_improvement, .. } = self;
        let gain = ls.improve(tour, inst.matrix(), nn, ls_scratch);
        *len -= gain;
        *ls_improvement += gain;
    }

    /// One MMAS iteration; returns the best-so-far length.
    pub fn iterate(&mut self) -> u64 {
        self.iterate_dynamics(None).0
    }

    /// [`iterate`](Self::iterate), additionally measuring search dynamics
    /// when a config is supplied. Ants are constructed one at a time, so
    /// tour-length moments accumulate in-stream
    /// ([`aco_obs::dynamics::compute_raw_from_moments`]); the O(n²) trail
    /// scans run only when `dynamics` is `Some`.
    pub fn iterate_dynamics(
        &mut self,
        dynamics: Option<&aco_obs::DynamicsConfig>,
    ) -> (u64, Option<aco_obs::RawDynamics>) {
        self.iterations += 1;
        let all_ants = self.ls_scope == LsScope::AllAnts;
        let mut iter_best: Option<(Tour, u64)> = None;
        let (mut len_sum, mut len_sumsq) = (0.0f64, 0.0f64);
        for _ in 0..self.m {
            let (mut tour, mut len) = self.construct_one();
            if all_ants {
                self.ls_improve(&mut tour, &mut len);
            }
            len_sum += len as f64;
            len_sumsq += len as f64 * len as f64;
            if iter_best.as_ref().is_none_or(|&(_, b)| len < b) {
                iter_best = Some((tour, len));
            }
        }
        let mut iter_best = iter_best.expect("m >= 1 ants");
        if !all_ants {
            self.ls_improve(&mut iter_best.0, &mut iter_best.1);
        }
        self.last_iter_best = iter_best.1;

        let improved = self.best.as_ref().is_none_or(|&(_, b)| iter_best.1 < b);
        if improved {
            // Tighter bounds as the best tour improves.
            self.best = Some(iter_best.clone());
            let rho = self.params.rho as f64;
            self.tau_max = 1.0 / (rho * iter_best.1 as f64);
            self.tau_min = self.tau_max / (2.0 * self.n as f64);
            self.since_improvement = 0;
        } else {
            self.since_improvement += 1;
        }

        // Evaporation.
        let keep = 1.0 - self.params.rho as f64;
        for t in self.tau.iter_mut() {
            *t *= keep;
        }

        // Deposit: iteration-best, or best-so-far on the schedule.
        let use_gb = self.mmas.gb_every > 0 && self.iterations % self.mmas.gb_every == 0;
        let (tour, len) =
            if use_gb { self.best.as_ref().expect("set above").clone() } else { iter_best };
        let dep = 1.0 / len as f64;
        for k in 0..self.n {
            let i = tour.order()[k] as usize;
            let j = tour.order()[(k + 1) % self.n] as usize;
            self.tau[i * self.n + j] += dep;
            self.tau[j * self.n + i] += dep;
        }

        self.clamp();

        // Stagnation restart.
        if self.mmas.restart_after > 0 && self.since_improvement >= self.mmas.restart_after {
            self.tau.fill(self.tau_max);
            self.since_improvement = 0;
            self.restarts += 1;
        }

        self.recompute_choice();
        // Dynamics snapshot the trail state at the iteration boundary —
        // after deposit, clamp, and any restart.
        let raw = dynamics.map(|cfg| {
            aco_obs::dynamics::compute_raw_from_moments(
                cfg,
                self.m as u64,
                len_sum,
                len_sumsq,
                &self.tau,
                self.n,
            )
        });
        (self.best.as_ref().map(|&(_, l)| l).expect("set above"), raw)
    }

    /// How many stagnation restarts (`restart_after` exceeded, trails
    /// re-initialised to `tau_max`) have fired so far.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Run `iters` iterations; returns the best length.
    pub fn run(&mut self, iters: usize) -> u64 {
        let mut best = u64::MAX;
        for _ in 0..iters {
            best = self.iterate();
        }
        best
    }

    /// Best length found in the most recent [`MaxMinAntSystem::iterate`]
    /// (`u64::MAX` before the first iteration).
    pub fn last_iter_best(&self) -> u64 {
        self.last_iter_best
    }

    /// Ctx-driven run: cancellation/deadline checked at every iteration
    /// boundary; one iteration-best event emitted per iteration.
    pub fn run_ctx(
        &mut self,
        iterations: usize,
        ctx: &crate::lifecycle::SolveCtx,
    ) -> crate::lifecycle::RunOutcome {
        crate::lifecycle::drive_dynamics(iterations, ctx, |_| {
            let (best, raw) = self.iterate_dynamics(ctx.dynamics());
            (self.last_iter_best, best, raw)
        })
    }

    /// Operation counters for an MMAS update (extension of the paper's
    /// cost analysis: deposit is `O(n)` instead of `O(m n)`).
    pub fn update_counters(n: usize) -> OpCounter {
        let cells = (n * n) as u64;
        OpCounter {
            loads: cells + 4 * n as u64,
            stores: cells + 2 * n as u64,
            flops: cells + 2 * n as u64,
            alu: 4 * n as u64,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aco_tsp::generator::uniform_random;

    #[test]
    fn bounds_hold_after_every_iteration() {
        let inst = uniform_random("mmas", 40, 800.0, 31);
        let mut mmas =
            MaxMinAntSystem::new(&inst, AcoParams::default().nn(15).seed(4), MmasParams::default());
        for _ in 0..10 {
            mmas.iterate();
            let (lo, hi) = mmas.bounds();
            assert!(lo > 0.0 && hi > lo);
            for &t in mmas.tau() {
                assert!(
                    t >= lo * (1.0 - 1e-12) && t <= hi * (1.0 + 1e-12),
                    "tau {t} outside [{lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn improves_and_stays_valid() {
        let inst = uniform_random("mmas", 50, 1000.0, 32);
        let mut mmas = MaxMinAntSystem::new(
            &inst,
            AcoParams::default().nn(15).seed(8).ants(25),
            MmasParams::default(),
        );
        let first = mmas.iterate();
        let last = mmas.run(25);
        assert!(last <= first);
        let (tour, len) = mmas.best().expect("ran");
        assert!(tour.is_valid());
        assert_eq!(len, tour.length(inst.matrix()));
    }

    #[test]
    fn restart_resets_trails() {
        let inst = uniform_random("mmas", 30, 500.0, 33);
        let mut mmas = MaxMinAntSystem::new(
            &inst,
            AcoParams::default().nn(10).seed(2).ants(5),
            MmasParams { gb_every: 0, restart_after: 1 },
        );
        mmas.run(5);
        // With restart_after = 1, trails were re-initialised recently; all
        // values close to tau_max or clamped shortly after.
        let (_, hi) = mmas.bounds();
        let above_half = mmas.tau().iter().filter(|&&t| t > hi * 0.4).count();
        assert!(above_half > 0, "restart should lift trails toward tau_max");
        assert!(mmas.restarts() >= 1, "every fired restart is counted");
    }
}
