//! CPU operation counting and cost model.
//!
//! The paper's Figures 4 and 5 report speed-ups of the GPU kernels over
//! Stützle's sequential ANSI-C code measured on the authors' host CPU. We
//! have neither their CPU nor their binary, so the sequential Rust port
//! counts its abstract operations (ALU, flops, `pow` calls, loads/stores,
//! RNG draws, branches) and a documented [`CpuModel`] converts the counts
//! to milliseconds — the same counting methodology the simulated GPU side
//! uses, which keeps the speed-up *ratios* meaningful.
//!
//! The model is calibrated to a 2009-era Intel Xeon (Nehalem class,
//! ~2.66 GHz), the hardware that would have driven a Tesla C1060 box; the
//! constants are deliberately conservative (sustained, not peak).

/// Abstract operation counters for a phase of the sequential algorithm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounter {
    /// Integer/logic ops.
    pub alu: u64,
    /// Floating-point add/mul/div (double precision, as in ACOTSP).
    pub flops: u64,
    /// `pow()` library calls.
    pub pow_calls: u64,
    /// Memory loads (8-byte granularity in the model).
    pub loads: u64,
    /// Memory stores.
    pub stores: u64,
    /// `ran01()` draws.
    pub rng: u64,
    /// Conditional branches (mispredict-prone inner-loop ones).
    pub branches: u64,
}

impl OpCounter {
    /// Merge another counter into this one.
    pub fn merge(&mut self, o: &OpCounter) {
        self.alu += o.alu;
        self.flops += o.flops;
        self.pow_calls += o.pow_calls;
        self.loads += o.loads;
        self.stores += o.stores;
        self.rng += o.rng;
        self.branches += o.branches;
    }

    /// Reset all counters to zero.
    pub fn reset(&mut self) {
        *self = OpCounter::default();
    }
}

/// Host CPU model converting [`OpCounter`] to milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Sustained instructions per cycle on this pointer-chasing, branchy
    /// integer/FP mix (well below the 4-wide peak).
    pub ipc: f64,
    /// Cycles per `pow()` call (glibc `pow` on doubles).
    pub pow_cycles: f64,
    /// Cycles per `ran01()` draw (LCG with a 64-bit multiply + modulo).
    pub rng_cycles: f64,
    /// Average cycles lost per inner-loop branch (mispredict amortized).
    pub branch_cycles: f64,
    /// Sustained memory bandwidth in GB/s for streaming the matrices.
    pub mem_bandwidth_gbps: f64,
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel {
            clock_ghz: 2.66,
            ipc: 1.6,
            pow_cycles: 60.0,
            rng_cycles: 18.0,
            branch_cycles: 1.5,
            mem_bandwidth_gbps: 8.0,
        }
    }
}

impl CpuModel {
    /// Convert counters to milliseconds: compute and memory streams
    /// overlap, so the slower one bounds the phase.
    pub fn time_ms(&self, c: &OpCounter) -> f64 {
        let compute_cycles = (c.alu + c.flops) as f64 / self.ipc
            + c.pow_calls as f64 * self.pow_cycles
            + c.rng as f64 * self.rng_cycles
            + c.branches as f64 * self.branch_cycles;
        let compute_ms = compute_cycles / (self.clock_ghz * 1e6);
        let bytes = (c.loads + c.stores) as f64 * 8.0;
        let memory_ms = bytes / (self.mem_bandwidth_gbps * 1e6);
        compute_ms.max(memory_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merging_and_reset() {
        let mut a =
            OpCounter { alu: 1, flops: 2, pow_calls: 3, loads: 4, stores: 5, rng: 6, branches: 7 };
        let b = a;
        a.merge(&b);
        assert_eq!(a.alu, 2);
        assert_eq!(a.branches, 14);
        a.reset();
        assert_eq!(a, OpCounter::default());
    }

    #[test]
    fn compute_bound_phase() {
        let m = CpuModel::default();
        let c = OpCounter { flops: 2_660_000_000, ..Default::default() };
        // 2.66e9 flops at IPC 1.6 on 2.66 GHz = 625 ms.
        let t = m.time_ms(&c);
        assert!((t - 625.0).abs() < 1.0, "got {t}");
    }

    #[test]
    fn memory_bound_phase() {
        let m = CpuModel::default();
        let c = OpCounter { loads: 1_000_000, ..Default::default() };
        // 8 MB at 8 GB/s = 1 ms.
        let t = m.time_ms(&c);
        assert!((t - 1.0).abs() < 0.1, "got {t}");
    }

    #[test]
    fn pow_dominates_when_called_per_step() {
        let m = CpuModel::default();
        let with_pow = OpCounter { pow_calls: 1_000_000, ..Default::default() };
        let without = OpCounter { flops: 1_000_000, ..Default::default() };
        assert!(m.time_ms(&with_pow) > 20.0 * m.time_ms(&without));
    }
}
