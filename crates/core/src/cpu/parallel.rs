//! Multi-threaded CPU colony.
//!
//! Ants are embarrassingly parallel within an iteration (the paper's
//! premise); this module fans construction out over OS threads with
//! per-ant decorrelated seeds, so the result is identical for any thread
//! count — a property the tests pin down. Pheromone update stays
//! sequential (it is O(n²) and memory-bound).

use aco_simt::rng::PmRng;
use aco_tsp::Tour;

use super::ant_system::{AntSystem, TourPolicy, TourScratch};

/// Construct all `m` tours with `threads` workers. Deterministic in
/// `(seed, iteration)` regardless of `threads`. Each worker reuses one
/// [`TourScratch`] across its ants, so construction allocates only the
/// tours themselves.
pub fn construct_parallel(
    aco: &AntSystem<'_>,
    policy: TourPolicy,
    iteration: u64,
    threads: usize,
) -> Vec<(Tour, u64)> {
    let m = aco.m();
    let threads = threads.clamp(1, m);
    let seed_of =
        |ant: usize| PmRng::thread_seed(aco.params().seed ^ (iteration << 20), ant as u64);

    if threads == 1 {
        let mut scratch = TourScratch::default();
        return (0..m)
            .map(|a| aco.construct_with_seed_in(&mut scratch, seed_of(a), policy))
            .collect();
    }

    let mut out: Vec<Option<(Tour, u64)>> = (0..m).map(|_| None).collect();
    let chunk = m.div_ceil(threads);
    std::thread::scope(|scope| {
        for (w, slot) in out.chunks_mut(chunk).enumerate() {
            let aco_ref = &aco;
            scope.spawn(move || {
                let mut scratch = TourScratch::default();
                for (k, s) in slot.iter_mut().enumerate() {
                    let ant = w * chunk + k;
                    *s = Some(aco_ref.construct_with_seed_in(&mut scratch, seed_of(ant), policy));
                }
            });
        }
    });
    out.into_iter().map(|s| s.expect("every ant constructed")).collect()
}

/// A full parallel iteration: parallel construction + sequential update.
/// Returns the iteration-best length.
pub fn iterate_parallel(
    aco: &mut AntSystem<'_>,
    policy: TourPolicy,
    iteration: u64,
    threads: usize,
) -> u64 {
    let mut sols = construct_parallel(aco, policy, iteration, threads);
    aco.apply_local_search(&mut sols);
    let best = sols.iter().map(|&(_, l)| l).min().expect("m >= 1");
    let mut c = super::counter::OpCounter::default();
    aco.update_pheromone(&sols, &mut c);
    best
}

/// Ctx-driven parallel colony loop: `iterations` full iterations
/// (choice refresh → parallel construction → sequential update) starting
/// at colony iteration `first_iteration`, with cancellation/deadline
/// checked at every iteration boundary and one iteration-best event
/// emitted per iteration.
///
/// `best` carries the best-so-far across calls (the caller owns it, so a
/// stopped run can resume or report its partial best). `on_iter` receives
/// the counters of the sequential phases (choice refresh + pheromone
/// update) so callers can price what did not fan out over `threads`.
///
/// Deterministic in `(seed, first_iteration, iterations)` regardless of
/// `threads` — the same per-ant decorrelated streams as
/// [`construct_parallel`].
#[allow(clippy::too_many_arguments)]
pub fn run_parallel_ctx(
    aco: &mut AntSystem<'_>,
    policy: TourPolicy,
    threads: usize,
    iterations: usize,
    first_iteration: u64,
    ctx: &crate::lifecycle::SolveCtx,
    best: &mut Option<(Tour, u64)>,
    mut on_iter: impl FnMut(&super::counter::OpCounter),
) -> crate::lifecycle::RunOutcome {
    if aco.m() == 0 {
        // No ants, no work: report zero completed iterations instead of
        // panicking on an empty solution set (callers map a best-less
        // outcome to their no-solution error).
        return crate::lifecycle::RunOutcome { iterations: 0, stopped: None };
    }
    crate::lifecycle::drive_dynamics(iterations, ctx, |k| {
        // Match sequential semantics: refresh choice info from the
        // pheromone laid down last iteration before constructing.
        let mut c = super::counter::OpCounter::default();
        aco.refresh_choice(&mut c);
        let mut sols = construct_parallel(aco, policy, first_iteration + k, threads);
        // Local search runs on the host thread after the parallel fan-in,
        // so results stay thread-count independent.
        aco.apply_local_search(&mut sols);
        let (tour, len) = sols.iter().min_by_key(|&&(_, l)| l).cloned().expect("m >= 1 ants");
        if best.as_ref().is_none_or(|&(_, b)| len < b) {
            *best = Some((tour, len));
        }
        aco.update_pheromone(&sols, &mut c);
        on_iter(&c);
        // Dynamics are measured at the fan-in on the host thread, so they
        // are as thread-count independent as the tours themselves.
        let raw = ctx.dynamics().map(|cfg| {
            let lens: Vec<u64> = sols.iter().map(|&(_, l)| l).collect();
            aco_obs::dynamics::compute_raw(cfg, &lens, aco.tau(), aco.n())
        });
        (len, best.as_ref().map(|&(_, l)| l).expect("set above"), raw)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::AcoParams;
    use aco_tsp::generator::uniform_random;

    #[test]
    fn thread_count_does_not_change_results() {
        let inst = uniform_random("par", 40, 800.0, 41);
        let aco = AntSystem::new(&inst, AcoParams::default().nn(12).seed(77).ants(16));
        let one = construct_parallel(&aco, TourPolicy::NearestNeighborList, 0, 1);
        let four = construct_parallel(&aco, TourPolicy::NearestNeighborList, 0, 4);
        let many = construct_parallel(&aco, TourPolicy::NearestNeighborList, 0, 16);
        let lens = |v: &Vec<(Tour, u64)>| v.iter().map(|&(_, l)| l).collect::<Vec<_>>();
        assert_eq!(lens(&one), lens(&four));
        assert_eq!(lens(&one), lens(&many));
    }

    #[test]
    fn different_iterations_give_different_tours() {
        let inst = uniform_random("par", 40, 800.0, 42);
        let aco = AntSystem::new(&inst, AcoParams::default().nn(12).seed(7).ants(8));
        let a = construct_parallel(&aco, TourPolicy::NearestNeighborList, 0, 4);
        let b = construct_parallel(&aco, TourPolicy::NearestNeighborList, 1, 4);
        let la: Vec<u64> = a.iter().map(|&(_, l)| l).collect();
        let lb: Vec<u64> = b.iter().map(|&(_, l)| l).collect();
        assert_ne!(la, lb);
    }

    #[test]
    fn parallel_iterations_converge() {
        let inst = uniform_random("par", 60, 1000.0, 43);
        let mut aco = AntSystem::new(&inst, AcoParams::default().nn(15).seed(3));
        let mut bests = Vec::new();
        for it in 0..15 {
            bests.push(iterate_parallel(&mut aco, TourPolicy::NearestNeighborList, it, 4));
        }
        let first = bests[0];
        let min_late = *bests[5..].iter().min().expect("non-empty");
        assert!(min_late <= first, "search should not degrade: {min_late} vs {first}");
    }

    #[test]
    fn all_tours_valid_in_parallel() {
        let inst = uniform_random("par", 35, 700.0, 44);
        let aco = AntSystem::new(&inst, AcoParams::default().nn(10).seed(5).ants(12));
        for (t, l) in construct_parallel(&aco, TourPolicy::FullProbabilistic, 3, 3) {
            assert!(t.is_valid());
            assert_eq!(l, t.length(inst.matrix()));
        }
    }
}
