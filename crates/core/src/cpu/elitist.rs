//! Elitist and rank-based Ant System variants.
//!
//! Two further classic members of the ACO family (Dorigo & Stützle, 2004,
//! ch. 3), composed from the [`AntSystem`] primitives — they differ from
//! plain AS only in *who deposits and how much*:
//!
//! * **Elitist AS**: all ants deposit as usual, and the best-so-far tour
//!   receives an extra `e / C_bs` reinforcement each iteration,
//! * **Rank-based AS (ASrank)**: only the `w - 1` best ants of the
//!   iteration deposit, weighted by rank (`(w - r)/C_r`), plus the
//!   best-so-far tour with weight `w`.
//!
//! Both reuse the candidate-list construction, so their GPU mapping would
//! reuse the paper's tour kernels unchanged — only the (cheap) update
//! stage differs, which is why the paper's pheromone-stage analysis
//! carries over directly.

use aco_tsp::{Tour, TspInstance};

use super::ant_system::{AntSystem, TourPolicy};
use super::counter::OpCounter;
use crate::params::AcoParams;

/// Which deposit schedule to run on top of the Ant System.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Elitism {
    /// Extra best-so-far deposit with this weight (`e`).
    Elitist(f64),
    /// Rank-based with `w` ranks.
    RankBased(usize),
}

/// An Ant System with an elitist or rank-based update schedule.
pub struct ElitistAntSystem<'a> {
    aco: AntSystem<'a>,
    schedule: Elitism,
    policy: TourPolicy,
    best: Option<(Tour, u64)>,
}

impl<'a> ElitistAntSystem<'a> {
    /// Build a colony with the given deposit schedule.
    pub fn new(inst: &'a TspInstance, params: AcoParams, schedule: Elitism) -> Self {
        match schedule {
            Elitism::Elitist(e) => assert!(e > 0.0, "elitist weight must be positive"),
            Elitism::RankBased(w) => assert!(w >= 2, "rank-based needs w >= 2"),
        }
        ElitistAntSystem {
            aco: AntSystem::new(inst, params),
            schedule,
            policy: TourPolicy::NearestNeighborList,
            best: None,
        }
    }

    /// Best solution so far.
    pub fn best(&self) -> Option<(&Tour, u64)> {
        self.best.as_ref().map(|(t, l)| (t, *l))
    }

    /// Pheromone matrix (for invariants/tests).
    pub fn tau(&self) -> &[f64] {
        self.aco.tau()
    }

    /// One iteration; returns the best-so-far length.
    pub fn iterate(&mut self) -> u64 {
        let mut c = OpCounter::default();
        self.aco.refresh_choice(&mut c);
        let mut sols = self.aco.construct_solutions(self.policy, &mut c);
        sols.sort_by_key(|&(_, l)| l);
        if self.best.as_ref().is_none_or(|&(_, b)| sols[0].1 < b) {
            self.best = Some(sols[0].clone());
        }
        let (best_tour, best_len) = self.best.as_ref().expect("set above").clone();

        self.aco.evaporate(&mut c);
        match self.schedule {
            Elitism::Elitist(e) => {
                for (tour, len) in &sols {
                    let dep = 1.0 / *len as f64;
                    self.aco.deposit_weighted(tour, dep, &mut c);
                }
                self.aco.deposit_weighted(&best_tour, e / best_len as f64, &mut c);
            }
            Elitism::RankBased(w) => {
                for (r, (tour, len)) in sols.iter().take(w - 1).enumerate() {
                    let weight = (w - 1 - r) as f64;
                    self.aco.deposit_weighted(tour, weight / *len as f64, &mut c);
                }
                self.aco.deposit_weighted(&best_tour, w as f64 / best_len as f64, &mut c);
            }
        }
        best_len
    }

    /// Run `iters` iterations; returns the best length.
    pub fn run(&mut self, iters: usize) -> u64 {
        let mut best = u64::MAX;
        for _ in 0..iters {
            best = self.iterate();
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aco_tsp::generator::uniform_random;

    #[test]
    fn elitist_improves_and_reinforces_best_edges() {
        let inst = uniform_random("el", 45, 800.0, 13);
        let mut el = ElitistAntSystem::new(
            &inst,
            AcoParams::default().nn(12).seed(4).ants(20),
            Elitism::Elitist(10.0),
        );
        let first = el.iterate();
        let last = el.run(20);
        assert!(last <= first);
        let (tour, len) = el.best().expect("ran");
        assert!(tour.is_valid());
        assert_eq!(len, tour.length(inst.matrix()));
        // The best tour's edges must carry more pheromone than average.
        let n = inst.n();
        let tau = el.tau();
        let avg: f64 = tau.iter().sum::<f64>() / tau.len() as f64;
        let best_avg: f64 =
            tour.edges().iter().map(|&(i, j)| tau[i as usize * n + j as usize]).sum::<f64>()
                / n as f64;
        assert!(best_avg > 2.0 * avg, "best edges: {best_avg:.3e} vs average {avg:.3e}");
    }

    #[test]
    fn rank_based_improves_and_stays_positive() {
        let inst = uniform_random("rk", 45, 800.0, 14);
        let mut rk = ElitistAntSystem::new(
            &inst,
            AcoParams::default().nn(12).seed(5).ants(20),
            Elitism::RankBased(6),
        );
        let first = rk.iterate();
        let last = rk.run(20);
        assert!(last <= first);
        assert!(rk.tau().iter().all(|&t| t > 0.0));
    }

    #[test]
    fn variants_are_comparable_to_plain_as() {
        let inst = uniform_random("cmp", 50, 900.0, 15);
        let params = AcoParams::default().nn(12).seed(6).ants(25);
        let mut plain = AntSystem::new(&inst, params.clone());
        let plain_best = plain.run(15, TourPolicy::NearestNeighborList) as f64;
        for schedule in [Elitism::Elitist(25.0), Elitism::RankBased(6)] {
            let mut v = ElitistAntSystem::new(&inst, params.clone(), schedule);
            let b = v.run(15) as f64;
            let gap = ((b - plain_best) / plain_best).abs();
            assert!(gap < 0.15, "{schedule:?}: {b} vs plain {plain_best}");
        }
    }

    #[test]
    #[should_panic(expected = "w >= 2")]
    fn rank_based_validates_w() {
        let inst = uniform_random("bad", 10, 100.0, 1);
        let _ = ElitistAntSystem::new(&inst, AcoParams::default().nn(5), Elitism::RankBased(1));
    }
}
