//! Ant Colony Optimisation core — the paper's contribution.
//!
//! Two halves:
//!
//! * [`cpu`] — the sequential ACOTSP-style Ant System the paper benchmarks
//!   against (plus a multi-threaded colony and the ACS / MMAS variants from
//!   the paper's future work), instrumented with an operation-counting CPU
//!   cost model;
//! * [`gpu`] — the paper's GPU kernel strategies implemented against the
//!   [`aco_simt`] simulator: all eight tour-construction versions of
//!   Table II and all five pheromone-update versions of Tables III/IV,
//!   their analytic cost models, and a full-iteration orchestrator.

pub mod cpu;
pub mod gpu;
pub mod lifecycle;
pub mod params;
pub mod quality;

pub use aco_localsearch::{LocalSearch, LsScope};
pub use cpu::{
    AcsParams, AntColonySystem, AntSystem, CpuModel, MaxMinAntSystem, MmasParams, OpCounter,
    TourPolicy,
};
pub use gpu::{GpuAntColonySystem, GpuAntSystem, PheromoneStrategy, TourStrategy};
pub use lifecycle::{CancelToken, IterationEvent, RunOutcome, SolveCtx, StopReason};
pub use params::AcoParams;
