//! Ant System parameters.
//!
//! Defaults follow Dorigo & Stützle, *Ant Colony Optimization* (2004) — the
//! settings the paper states it uses ("ACO parameters such as the number of
//! ants m, α, β, and so on are set according with the values recommended in
//! [1]"), with the paper's own choices for `m = n` and `NN = 30`.

/// Parameters shared by every ACO variant in this crate.
#[derive(Debug, Clone, PartialEq)]
pub struct AcoParams {
    /// Pheromone influence. Book default: 1.
    pub alpha: f32,
    /// Heuristic influence. Book default for AS: 2.
    pub beta: f32,
    /// Evaporation rate in `(0, 1]`. Book default for AS: 0.5.
    pub rho: f32,
    /// Number of ants; `None` means `m = n` (the paper's setting).
    pub num_ants: Option<usize>,
    /// Nearest-neighbour candidate list depth. Paper: 30.
    pub nn_size: usize,
    /// Base RNG seed; every ant/thread derives its own stream from it.
    pub seed: u64,
}

impl Default for AcoParams {
    fn default() -> Self {
        AcoParams {
            alpha: 1.0,
            beta: 2.0,
            rho: 0.5,
            num_ants: None,
            nn_size: 30,
            seed: 0x0AC0_5EED,
        }
    }
}

impl AcoParams {
    /// Resolve the ant count for an instance of `n` cities.
    pub fn ants_for(&self, n: usize) -> usize {
        self.num_ants.unwrap_or(n)
    }

    /// Builder: α.
    pub fn alpha(mut self, a: f32) -> Self {
        self.alpha = a;
        self
    }

    /// Builder: β.
    pub fn beta(mut self, b: f32) -> Self {
        self.beta = b;
        self
    }

    /// Builder: ρ.
    pub fn rho(mut self, r: f32) -> Self {
        assert!(r > 0.0 && r <= 1.0, "rho must be in (0, 1], got {r}");
        self.rho = r;
        self
    }

    /// Builder: explicit ant count.
    pub fn ants(mut self, m: usize) -> Self {
        self.num_ants = Some(m);
        self
    }

    /// Builder: candidate list depth.
    pub fn nn(mut self, nn: usize) -> Self {
        assert!(nn > 0, "candidate list depth must be positive");
        self.nn_size = nn;
        self
    }

    /// Builder: seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_book() {
        let p = AcoParams::default();
        assert_eq!(p.alpha, 1.0);
        assert_eq!(p.beta, 2.0);
        assert_eq!(p.rho, 0.5);
        assert_eq!(p.nn_size, 30);
        assert_eq!(p.ants_for(442), 442); // m = n
    }

    #[test]
    fn builders_override() {
        let p = AcoParams::default().alpha(2.0).beta(5.0).rho(0.1).ants(25).nn(15).seed(7);
        assert_eq!(p.ants_for(1000), 25);
        assert_eq!(p.nn_size, 15);
        assert_eq!(p.seed, 7);
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn rho_validated() {
        let _ = AcoParams::default().rho(0.0);
    }
}
