//! Integration tests for the fault-tolerance stack: deterministic fault
//! injection, supervised retry/failover, health/quarantine placement,
//! graceful CPU degradation, watchdog reclassification, slot-accounting
//! balance — and the two acceptance invariants: a disarmed injector
//! changes nothing, and a fixed fault plan yields bit-identical
//! outcomes at any worker count (including the proptest sweep over
//! random seeded plans).

use std::sync::Arc;
use std::time::Duration;

use aco_gpu::core::cpu::TourPolicy;
use aco_gpu::core::gpu::{PheromoneStrategy, TourStrategy};
use aco_gpu::core::AcoParams;
use aco_gpu::engine::{
    Backend, DeviceAffinity, DeviceId, DeviceProfile, Engine, EngineConfig, EngineError, Failover,
    FaultKind, FaultPlan, GpuDevice, HealthState, PlacementError, RetryPolicy, SolveReport,
    SolveRequest,
};
use aco_gpu::tsp;
use proptest::prelude::*;

/// Silence injected-fault panics (they are part of the exercise) while
/// leaving genuine test-failure panics fully reported.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.as_str())
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .is_some_and(|s| s.contains("injected"));
            if !injected {
                prev(info);
            }
        }));
    });
}

/// Two C1060s (one slower twin) — the failover pair most tests use.
fn twin_pool() -> Vec<DeviceProfile> {
    vec![DeviceProfile::tesla_c1060("g0"), DeviceProfile::tesla_c1060("g1").sm_count(15)]
}

fn gpu_req(inst: &Arc<tsp::TspInstance>, seed: u64) -> SolveRequest {
    SolveRequest::new(Arc::clone(inst), AcoParams::default().nn(8).ants(10))
        .backend(Backend::Gpu {
            device: GpuDevice::TeslaC1060,
            tour: TourStrategy::NNList,
            pheromone: PheromoneStrategy::AtomicShared,
        })
        .iterations(2)
        .seed(seed)
}

/// Acceptance: with no fault plan armed, reports are bit-identical to
/// the unsupervised engine — attempts = 1, no fault records, and the
/// new retry plumbing changes nothing about results or placements.
#[test]
fn disarmed_engine_is_unchanged_and_reports_single_attempts() {
    let inst = Arc::new(tsp::uniform_random("flt-base", 26, 500.0, 7));
    let batch = |retry: RetryPolicy| -> Vec<SolveRequest> {
        (0..6).map(|j| gpu_req(&inst, 50 + j).retry(retry)).collect()
    };
    let run = |retry: RetryPolicy| {
        Engine::new(EngineConfig::with_workers(2).devices(twin_pool())).run_batch(batch(retry))
    };
    let plain = run(RetryPolicy::none());
    // An armed retry policy with no faults to trigger it must be inert.
    let supervised = run(RetryPolicy::retries(2).failover(Failover::CpuFallback));
    assert_eq!(plain, supervised, "idle retry supervision must not change any report");
    for r in &plain {
        let r = r.as_ref().expect("fault-free job solves");
        assert_eq!((r.attempts, r.faults.len()), (1, 0));
    }
}

/// Acceptance: under a fixed fault plan the complete trajectory —
/// outcomes, placements, attempt counts, per-attempt fault records, and
/// final health states — is bit-identical at 1 and 4 workers.
#[test]
fn fixed_fault_plan_is_worker_count_invariant() {
    quiet_injected_panics();
    let inst = Arc::new(tsp::uniform_random("flt-det", 24, 500.0, 9));
    let plan = FaultPlan::new(41).flaky_device(0, 0.45).panic_rate(0.08);
    let run = |workers: usize| {
        let engine = Engine::new(
            EngineConfig::with_workers(workers).devices(twin_pool()).faults(plan.clone()),
        );
        let out = engine.run_batch((0..10).map(|j| {
            gpu_req(&inst, 200 + j).retry(RetryPolicy::retries(2).failover(Failover::HealthyDevice))
        }));
        engine.pool().assert_no_slot_leaks();
        let health: Vec<HealthState> =
            (0..2).map(|d| engine.pool().health(DeviceId(d)).expect("device exists")).collect();
        (out, health)
    };
    let (serial, serial_health) = run(1);
    let (parallel, parallel_health) = run(4);
    assert_eq!(serial, parallel, "fault/retry trajectory must not depend on worker count");
    assert_eq!(serial_health, parallel_health, "health ledger must not depend on worker count");

    // The plan actually bit: some job needed more than one attempt and
    // recorded its faults.
    let retried: Vec<&SolveReport> =
        serial.iter().filter_map(|r| r.as_ref().ok()).filter(|r| r.attempts > 1).collect();
    assert!(!retried.is_empty(), "flaky device must force at least one retry");
    for r in &retried {
        assert_eq!(r.faults.len() as u32, r.attempts - 1, "one fault record per failed attempt");
        assert!(r.faults.iter().all(|f| f.injected.is_some()), "faults here are all injected");
    }
}

/// A dead device quarantines after `quarantine_after` consecutive
/// failures: retried jobs fail over to the healthy twin, the quarantine
/// is visible in the health ledger and event log, and later submissions
/// are placed around it. The batch *prefers* the dead device — a soft
/// preference is honoured while the device is merely degraded (unlike
/// `Any` placements, which soft-avoid it after its first charged
/// failure), so the health machine walks the full Healthy → Degraded →
/// Quarantined path.
#[test]
fn dead_device_quarantines_and_failover_recovers() {
    quiet_injected_panics();
    let inst = Arc::new(tsp::uniform_random("flt-quar", 24, 500.0, 11));
    let engine = Engine::new(
        EngineConfig::with_workers(2).devices(twin_pool()).faults(FaultPlan::new(5).dead_device(0)),
    );
    let out = engine.run_batch((0..8).map(|j| {
        gpu_req(&inst, 300 + j)
            .affinity(DeviceAffinity::Preferred(DeviceId(0)))
            .retry(RetryPolicy::retries(2).failover(Failover::HealthyDevice))
    }));
    for r in &out {
        let r = r.as_ref().expect("failover to the healthy twin rescues every job");
        assert_eq!(r.device, Some(DeviceId(1)), "every job must complete on the healthy device");
    }
    // Jobs placed on g0 failed there first and recorded the transient.
    assert!(
        out.iter().filter_map(|r| r.as_ref().ok()).any(|r| {
            r.attempts > 1
                && r.faults.iter().any(|f| {
                    f.device == Some(DeviceId(0))
                        && f.injected == Some(FaultKind::TransientError)
                        && f.error.contains("injected transient device error")
                })
        }),
        "at least one job must have failed on the dead device first"
    );
    assert_eq!(engine.pool().health(DeviceId(0)), Some(HealthState::Quarantined));
    assert_eq!(engine.pool().health(DeviceId(1)), Some(HealthState::Healthy));
    let events = engine.pool().health_events();
    assert!(
        events.iter().any(|e| e.device == DeviceId(0) && e.state == HealthState::Quarantined),
        "quarantine transition must be on the event log: {events:?}"
    );
    engine.pool().assert_no_slot_leaks();

    // Placement now avoids the quarantined device outright.
    let after = engine.submit(gpu_req(&inst, 999)).wait().expect("post-quarantine job solves");
    assert_eq!(after.device, Some(DeviceId(1)));

    // And the snapshot/metrics surfaces agree.
    let snap = engine.device_stats();
    assert_eq!(snap[0].health, HealthState::Quarantined);
    assert!(snap[0].quarantines >= 1);
    let metrics = engine.metrics();
    let counter =
        |name: &str| metrics.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0);
    assert!(counter("aco_engine_retries_total") >= 1);
    assert!(counter("aco_engine_failovers_total") >= 1);
    assert!(counter("aco_engine_faults_injected_total") >= 1);
}

/// Graceful degradation: when every compatible device is dead, a
/// CpuFallback policy completes the batch on the CPU reference backend —
/// mid-flight for the jobs that tried the GPU, and at submit time once
/// the pool is fully quarantined.
#[test]
fn cpu_fallback_degrades_gracefully_when_the_pool_dies() {
    quiet_injected_panics();
    let inst = Arc::new(tsp::uniform_random("flt-cpu", 24, 500.0, 13));
    let engine = Engine::new(
        EngineConfig::with_workers(2)
            .devices(vec![DeviceProfile::tesla_c1060("solo")])
            .faults(FaultPlan::new(3).dead_device(0)),
    );
    let out = engine.run_batch((0..6).map(|j| {
        gpu_req(&inst, 400 + j).retry(RetryPolicy::retries(1).failover(Failover::CpuFallback))
    }));
    for r in &out {
        let r = r.as_ref().expect("CPU fallback rescues every job");
        assert_eq!(r.device, None, "degraded jobs must finish off-device");
    }
    // Early jobs degraded mid-flight (GPU attempt first); once the solo
    // device quarantined, later jobs degraded at submit with no GPU
    // attempt at all.
    assert!(out.iter().filter_map(|r| r.as_ref().ok()).any(|r| r.attempts > 1));
    assert!(out.iter().filter_map(|r| r.as_ref().ok()).any(|r| r.attempts == 1));
    assert_eq!(engine.pool().health(DeviceId(0)), Some(HealthState::Quarantined));
    engine.pool().assert_no_slot_leaks();
}

/// A pin is a contract: a job pinned to a quarantined device is rejected
/// with the typed placement error (unless its policy degrades to CPU),
/// and a panic-fault terminal failure carries job/backend/device.
#[test]
fn pinned_quarantine_is_typed_and_failures_are_enriched() {
    quiet_injected_panics();
    let inst = Arc::new(tsp::uniform_random("flt-pin", 24, 500.0, 17));
    let engine = Engine::new(
        EngineConfig::with_workers(1).devices(twin_pool()).faults(FaultPlan::new(7).device_rates(
            0,
            aco_gpu::faults::FaultRates { panic: 1.0, transient: 0.0, hang: 0.0 },
        )),
    );
    // No retries: the injected kernel panic is terminal and enriched.
    let err = engine
        .submit(gpu_req(&inst, 1).affinity(DeviceAffinity::Pinned(DeviceId(0))))
        .wait()
        .expect_err("panic on every attempt is terminal");
    match &err {
        EngineError::Failed { job, backend, device, message } => {
            assert_eq!(*device, Some(DeviceId(0)));
            assert!(backend.contains("gpu"), "backend label: {backend}");
            assert!(message.contains("injected kernel panic (job 0, attempt 1)"));
            assert!(err.to_string().contains(&format!("job {job} failed on")));
        }
        other => panic!("expected enriched Failed, got {other:?}"),
    }
    // Drive g0 into quarantine via its pinned panics.
    for seed in 2..5 {
        let _ = engine
            .submit(gpu_req(&inst, seed).affinity(DeviceAffinity::Pinned(DeviceId(0))))
            .wait();
    }
    assert_eq!(engine.pool().health(DeviceId(0)), Some(HealthState::Quarantined));
    let refused = engine
        .submit(gpu_req(&inst, 10).affinity(DeviceAffinity::Pinned(DeviceId(0))))
        .wait()
        .expect_err("pin to a quarantined device is refused");
    assert_eq!(
        refused,
        EngineError::Placement(PlacementError::DeviceQuarantined { device: DeviceId(0) })
    );
    engine.pool().assert_no_slot_leaks();
}

/// Injected hangs end in a bounded, deterministic device fault (the
/// supervisor's sleep cap, cut short by the attempt watchdog), and a
/// zero-budget watchdog reclassifies deadline expiry as a retryable hung
/// attempt rather than a terminal deadline verdict.
#[test]
fn hangs_are_bounded_and_watchdogs_reclassify() {
    quiet_injected_panics();
    let inst = Arc::new(tsp::uniform_random("flt-hang", 24, 500.0, 19));
    // Hang plan: every attempt on g0 hangs (capped at 10 ms), healthy
    // twin rescues on retry.
    let engine = Engine::new(
        EngineConfig::with_workers(1).devices(twin_pool()).faults(
            FaultPlan::new(23)
                .device_rates(
                    0,
                    aco_gpu::faults::FaultRates { panic: 0.0, transient: 0.0, hang: 1.0 },
                )
                .hang_ms(10),
        ),
    );
    let report = engine
        .submit(
            gpu_req(&inst, 1).affinity(DeviceAffinity::Pinned(DeviceId(0))).retry(
                RetryPolicy::retries(2)
                    .failover(Failover::CpuFallback)
                    .watchdog(Duration::from_millis(5)),
            ),
        )
        .wait()
        .expect("hung pin degrades to CPU");
    assert_eq!(report.device, None);
    assert!(report.attempts > 1);
    assert!(report.faults[0].error.contains("injected hang (job 0, attempt 1)"));
    assert_eq!(report.faults[0].injected, Some(FaultKind::Hang));

    // Watchdog reclassification: a zero watchdog expires every attempt
    // immediately — retryable, and terminal only once attempts run out.
    let err = engine
        .submit(
            SolveRequest::new(Arc::clone(&inst), AcoParams::default().nn(8).ants(10))
                .backend(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList })
                .iterations(2)
                .seed(2)
                .retry(RetryPolicy::retries(1).watchdog(Duration::ZERO)),
        )
        .wait()
        .expect_err("a zero watchdog can never finish");
    match &err {
        EngineError::Failed { message, .. } => {
            assert!(message.contains("watchdog"), "reclassified message: {message}");
        }
        other => panic!("expected watchdog Failed, got {other:?}"),
    }
    let metrics = engine.metrics();
    let trips = metrics
        .counters
        .iter()
        .find(|(n, _)| n == "aco_engine_watchdog_trips_total")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert!(trips >= 2, "both zero-watchdog attempts must trip: {trips}");
    engine.pool().assert_no_slot_leaks();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

    /// Property: for ANY seeded fault plan, every job reaches a terminal
    /// outcome, slot accounting balances, quarantine state is consistent
    /// — and the whole trajectory (reports, errors, health) is
    /// bit-identical at 1 and 2 workers.
    #[test]
    fn random_fault_plans_terminate_cleanly_and_deterministically(
        seed in 0u64..1_000,
        panic in 0.0f64..0.25,
        transient in 0.0f64..0.35,
        hang in 0.0f64..0.10,
    ) {
        quiet_injected_panics();
        let inst = Arc::new(tsp::uniform_random("flt-prop", 20, 400.0, 29));
        let plan = FaultPlan::new(seed)
            .panic_rate(panic)
            .transient_rate(transient)
            .hang_rate(hang)
            .hang_ms(5);
        let run = |workers: usize| {
            let engine = Engine::new(
                EngineConfig::with_workers(workers).devices(twin_pool()).faults(plan.clone()),
            );
            let out = engine.run_batch((0..6).map(|j| {
                gpu_req(&inst, 500 + j)
                    .retry(RetryPolicy::retries(2).failover(Failover::CpuFallback))
            }));
            engine.pool().assert_no_slot_leaks();
            let health: Vec<HealthState> = (0..2)
                .map(|d| engine.pool().health(DeviceId(d)).expect("device exists"))
                .collect();
            (out, health)
        };
        let (serial, serial_health) = run(1);
        let (parallel, parallel_health) = run(2);
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(serial_health, parallel_health);
        for r in &serial {
            match r {
                Ok(report) => {
                    prop_assert!(report.attempts >= 1 && report.attempts <= 3);
                    prop_assert_eq!(report.faults.len() as u32, report.attempts - 1);
                }
                Err(e) => {
                    // Terminal errors under this policy are exhausted
                    // retries of the retryable class.
                    prop_assert!(
                        matches!(e, EngineError::Failed { .. } | EngineError::Simt(_)),
                        "unexpected terminal error: {:?}", e
                    );
                }
            }
        }
    }
}
