//! Cross-crate property tests: for arbitrary small instances and seeds,
//! every GPU construction strategy yields valid tours, and every pheromone
//! strategy computes the same update as the host reference.

use aco_gpu::core::gpu::tour::{RngKind, TabuPlacement, TaskOpts, TaskTourKernel};
use aco_gpu::core::gpu::{run_pheromone, run_tour, ColonyBuffers, PheromoneStrategy, TourStrategy};
use aco_gpu::core::AcoParams;
use aco_gpu::simt::{launch, DeviceSpec, GlobalMem, SimMode};
use aco_gpu::tsp::{self, Tour};
use proptest::prelude::*;

fn devices() -> [DeviceSpec; 2] {
    [DeviceSpec::tesla_c1060(), DeviceSpec::tesla_m2050()]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn every_tour_strategy_builds_valid_tours(
        n in 16usize..72,
        seed in 0u64..1_000_000,
        strat_idx in 0usize..8,
        dev_idx in 0usize..2,
    ) {
        let strategy = TourStrategy::ALL[strat_idx];
        let dev = &devices()[dev_idx];
        let inst = tsp::uniform_random("prop", n, 500.0, seed);
        let params = AcoParams::default().nn(8.min(n - 1)).seed(seed);
        let mut gm = GlobalMem::new();
        let bufs = ColonyBuffers::allocate(&mut gm, &inst, &params);
        let run = run_tour(dev, &mut gm, bufs, strategy, 1.0, 2.0, seed, 0, SimMode::Full)
            .expect("valid launch");
        prop_assert!(run.total_ms() > 0.0);
        for t in bufs.read_tours(&gm) {
            let tour = Tour::new(t[..n].to_vec()).expect("permutation");
            prop_assert!(tour.is_valid());
            prop_assert_eq!(t[n], t[0], "closed tour");
        }
    }

    #[test]
    fn every_pheromone_strategy_matches_the_reference_update(
        n in 12usize..40,
        seed in 0u64..1_000_000,
        strat_idx in 0usize..5,
        dev_idx in 0usize..2,
    ) {
        let strategy = PheromoneStrategy::ALL[strat_idx];
        let dev = &devices()[dev_idx];
        let inst = tsp::uniform_random("prop2", n, 500.0, seed);
        let params = AcoParams::default().nn(6.min(n - 1)).seed(seed);
        let mut gm = GlobalMem::new();
        let bufs = ColonyBuffers::allocate(&mut gm, &inst, &params);
        // Host tours via the library RNG.
        let mut rng = aco_gpu::simt::rng::PmRng::new((seed % 1000 + 1) as u32);
        let tours: Vec<Tour> = (0..n)
            .map(|_| {
                let mut order: Vec<u32> = (0..n as u32).collect();
                for i in (1..n).rev() {
                    let j = (rng.next_f64() * (i + 1) as f64) as usize;
                    order.swap(i, j);
                }
                Tour::new_unchecked(order)
            })
            .collect();
        bufs.upload_tours(&mut gm, &tours, inst.matrix());

        // Host reference (exactly the device's padded-edge semantics for
        // atomics; off-diagonal cells only, which is what the search reads).
        let rho = 0.5f32;
        let lengths = bufs.read_lengths(&gm);
        let mut want: Vec<f32> = gm.f32(bufs.tau).iter().map(|&t| t * (1.0 - rho)).collect();
        for (a, t) in tours.iter().enumerate() {
            let dep = 1.0 / lengths[a];
            for s in 0..n {
                let i = t.order()[s] as usize;
                let j = t.order()[(s + 1) % n] as usize;
                want[i * n + j] += dep;
                want[j * n + i] += dep;
            }
        }

        run_pheromone(dev, &mut gm, bufs, strategy, rho, SimMode::Full).expect("valid launch");
        let got = gm.f32(bufs.tau);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue; // atomics deposit harmless padding self-edges
                }
                let (g, w) = (got[i * n + j], want[i * n + j]);
                let rel = (g - w).abs() / w.abs().max(1e-9);
                prop_assert!(rel < 5e-3, "{strategy:?} cell ({i},{j}): {g} vs {w}");
            }
        }
    }

    #[test]
    fn task_kernel_configurations_are_all_valid(
        n in 16usize..64,
        use_choice in any::<bool>(),
        use_nn in any::<bool>(),
        shared_tabu in any::<bool>(),
        texture in any::<bool>(),
        curand in any::<bool>(),
    ) {
        // Every point of the 5-dimensional option cube must produce valid
        // tours (the 6 paper rows are specific corners of this cube).
        let inst = tsp::uniform_random("cube", n, 400.0, 99);
        let params = AcoParams::default().nn(6.min(n - 1));
        let dev = DeviceSpec::tesla_c1060();
        let mut gm = GlobalMem::new();
        let bufs = ColonyBuffers::allocate(&mut gm, &inst, &params);
        if use_choice {
            let ck = aco_gpu::core::gpu::choice::ChoiceKernel { bufs, alpha: 1.0, beta: 2.0 };
            launch(&dev, &ck.config(), &ck, &mut gm, SimMode::Full).expect("choice");
        }
        bufs.clear_visited(&mut gm);
        let k = TaskTourKernel {
            bufs,
            opts: TaskOpts {
                use_choice_table: use_choice,
                rng: if curand { RngKind::CurandLike } else { RngKind::DeviceLcg },
                use_nn_list: use_nn,
                tabu: if shared_tabu { TabuPlacement::Shared } else { TabuPlacement::Global },
                texture,
                block: if shared_tabu { 32 } else { 128 },
            },
            alpha: 1.0,
            beta: 2.0,
            seed: 5,
            iteration: 0,
        };
        let cfg = k.config(&dev);
        launch(&dev, &cfg, &k, &mut gm, SimMode::Full).expect("valid launch");
        for t in bufs.read_tours(&gm) {
            prop_assert!(Tour::new(t[..n].to_vec()).is_ok());
        }
    }
}
