//! Integration tests for the simulated multi-GPU device pool: placement
//! determinism at any worker count (including the proptest acceptance
//! case), pinned-affinity honour/reject semantics, least-loaded vs
//! round-robin sharding quality, slot-budget admission, and the
//! release-mode starvation stress case.

use std::sync::Arc;

use aco_gpu::core::cpu::TourPolicy;
use aco_gpu::core::gpu::{PheromoneStrategy, TourStrategy};
use aco_gpu::core::AcoParams;
use aco_gpu::engine::{
    Backend, DeviceAffinity, DeviceId, DeviceModel, DeviceProfile, Engine, EngineConfig,
    EngineError, GpuDevice, PlacementError, PlacementStrategy, Priority, SolveRequest,
};
use aco_gpu::tsp;
use proptest::prelude::*;

/// Four devices, two per model; the second C1060 has half the SMs, so
/// the pool is genuinely heterogeneous.
fn pool4() -> Vec<DeviceProfile> {
    vec![
        DeviceProfile::tesla_c1060("g0"),
        DeviceProfile::tesla_c1060("g1").sm_count(15),
        DeviceProfile::tesla_m2050("f0"),
        DeviceProfile::tesla_m2050("f1"),
    ]
}

fn gpu_req(
    inst: &Arc<tsp::TspInstance>,
    device: GpuDevice,
    seed: u64,
    iterations: usize,
) -> SolveRequest {
    SolveRequest::new(Arc::clone(inst), AcoParams::default().nn(8).ants(10))
        .backend(Backend::Gpu {
            device,
            tour: TourStrategy::NNList,
            pheromone: PheromoneStrategy::AtomicShared,
        })
        .iterations(iterations)
        .seed(seed)
}

/// Acceptance: a 12-job GPU batch on a 4-device pool produces
/// bit-identical reports *and placements* at 1 and 4 workers, and the
/// batch is genuinely sharded — at least two devices per model carry
/// jobs.
#[test]
fn gpu_batch_shards_deterministically_across_worker_counts() {
    let inst = Arc::new(tsp::uniform_random("dev-det", 30, 500.0, 3));
    let batch = || -> Vec<SolveRequest> {
        (0..12)
            .map(|j| {
                let model = if j % 2 == 0 { GpuDevice::TeslaC1060 } else { GpuDevice::TeslaM2050 };
                gpu_req(&inst, model, 100 + j, 2)
            })
            .collect()
    };
    let run = |workers: usize| {
        Engine::new(EngineConfig::with_workers(workers).devices(pool4())).run_batch(batch())
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial, parallel, "reports and placements must not depend on worker count");

    let devices: Vec<DeviceId> = serial
        .iter()
        .map(|r| r.as_ref().expect("job solves").device.expect("GPU job runs on a device"))
        .collect();
    let c1060: std::collections::BTreeSet<DeviceId> = devices.iter().step_by(2).copied().collect();
    let m2050: std::collections::BTreeSet<DeviceId> =
        devices.iter().skip(1).step_by(2).copied().collect();
    assert!(c1060.len() >= 2, "C1060 jobs must share >= 2 devices: {c1060:?}");
    assert!(m2050.len() >= 2, "M2050 jobs must share >= 2 devices: {m2050:?}");
    assert!(c1060.iter().all(|d| d.0 <= 1) && m2050.iter().all(|d| d.0 >= 2), "model compat");
}

/// Acceptance: pinned affinity is honoured exactly, or rejected with the
/// typed error naming the conflict — before the job ever queues.
#[test]
fn pinned_affinity_is_honoured_or_rejected() {
    let inst = Arc::new(tsp::uniform_random("dev-pin", 24, 400.0, 5));
    let engine = Engine::new(EngineConfig::with_workers(2).devices(pool4()));

    // Honoured: the job runs on exactly the pinned device (the slower
    // C1060 twin — load would have picked g0).
    let pinned = engine
        .submit(
            gpu_req(&inst, GpuDevice::TeslaC1060, 1, 2)
                .affinity(DeviceAffinity::Pinned(DeviceId(1))),
        )
        .wait()
        .expect("compatible pin solves");
    assert_eq!(pinned.device, Some(DeviceId(1)));

    // Rejected: wrong model.
    let wrong_model = engine
        .submit(
            gpu_req(&inst, GpuDevice::TeslaM2050, 2, 2)
                .affinity(DeviceAffinity::Pinned(DeviceId(0))),
        )
        .wait();
    assert_eq!(
        wrong_model,
        Err(EngineError::Placement(PlacementError::IncompatibleDevice {
            device: DeviceId(0),
            required: DeviceModel::TeslaM2050,
            installed: DeviceModel::TeslaC1060,
        }))
    );

    // Rejected: no such device.
    let unknown = engine
        .submit(
            gpu_req(&inst, GpuDevice::TeslaC1060, 3, 2)
                .affinity(DeviceAffinity::Pinned(DeviceId(9))),
        )
        .wait();
    assert_eq!(
        unknown,
        Err(EngineError::Placement(PlacementError::UnknownDevice { device: DeviceId(9) }))
    );

    // Rejected: a CPU job can never honour a pin.
    let cpu = engine
        .submit(
            SolveRequest::new(Arc::clone(&inst), AcoParams::default().nn(8).ants(10))
                .backend(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList })
                .iterations(2)
                .seed(4)
                .affinity(DeviceAffinity::Pinned(DeviceId(0))),
        )
        .wait();
    assert_eq!(
        cpu,
        Err(EngineError::Placement(PlacementError::NotADeviceJob { device: DeviceId(0) }))
    );
    assert_eq!(engine.outstanding(), 0, "rejected jobs free their slots on claim");
}

/// Acceptance: on a skewed batch (heavy and light jobs interleaved),
/// least-loaded placement bounds the worst device's predicted backlog
/// strictly better than round-robin — fewer queue-depth violations in
/// the cost model's own currency (assigned milliseconds).
#[test]
fn least_loaded_beats_round_robin_on_a_skewed_batch() {
    let heavy = Arc::new(tsp::uniform_random("dev-heavy", 36, 600.0, 7));
    let light = Arc::new(tsp::uniform_random("dev-light", 16, 300.0, 8));
    let twins = || vec![DeviceProfile::tesla_c1060("g0"), DeviceProfile::tesla_c1060("g1")];
    let max_assigned = |strategy: PlacementStrategy| -> (f64, f64) {
        let engine =
            Engine::new(EngineConfig::with_workers(1).devices(twins()).placement(strategy));
        let handles: Vec<_> = (0..8)
            .map(|j| {
                let (inst, iters) = if j % 2 == 0 { (&heavy, 3) } else { (&light, 1) };
                engine.submit(gpu_req(inst, GpuDevice::TeslaC1060, j, iters))
            })
            .collect();
        // Placement happens at submit; read the deterministic ledger
        // before draining.
        let stats = engine.device_stats();
        assert_eq!(stats.len(), 2);
        assert!(stats.iter().all(|d| d.assigned_ms > 0.0), "both devices used: {stats:?}");
        for h in handles {
            h.wait().expect("job solves");
        }
        (
            stats[0].assigned_ms.max(stats[1].assigned_ms),
            stats[0].assigned_ms + stats[1].assigned_ms,
        )
    };
    let (ll_max, ll_total) = max_assigned(PlacementStrategy::LeastLoaded);
    let (rr_max, rr_total) = max_assigned(PlacementStrategy::RoundRobin);
    assert!((ll_total - rr_total).abs() < 1e-9, "same batch, same total predicted work");
    assert!(
        ll_max < rr_max,
        "least-loaded must bound the worst backlog tighter: {ll_max:.3} vs {rr_max:.3}"
    );
}

/// A device's resident-job slot budget gates admission: with one slot,
/// four workers never run two jobs on the device concurrently.
#[test]
fn slot_budget_bounds_device_concurrency() {
    let inst = Arc::new(tsp::uniform_random("dev-slots", 20, 350.0, 9));
    let engine = Engine::new(
        EngineConfig::with_workers(4).devices(vec![DeviceProfile::tesla_c1060("solo").slots(1)]),
    );
    let reports = engine.run_batch((0..6).map(|j| gpu_req(&inst, GpuDevice::TeslaC1060, j, 2)));
    assert!(reports.iter().all(|r| r.is_ok()));
    let snap = &engine.device_stats()[0];
    assert_eq!(snap.peak_running, 1, "one slot admits one job at a time: {snap:?}");
    assert_eq!(snap.completed, 6);
    assert_eq!((snap.queued, snap.running), (0, 0), "queue fully drained");
    assert!(snap.peak_depth >= 2, "jobs queued behind the busy slot: {snap:?}");
    assert!(snap.busy_ms > 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Acceptance (satellite): identical batches on an N-device pool
    /// produce identical device assignments at 1 vs 4 workers, across
    /// random instance sizes, seeds, batch sizes and affinities.
    #[test]
    fn identical_batches_place_identically_at_1_vs_4_workers(
        n in 14usize..26,
        seed in 0u64..1_000_000,
        jobs in 3usize..7,
        preferred in 0u32..4,
    ) {
        let inst = Arc::new(tsp::uniform_random("dev-prop", n, 400.0, seed));
        let batch = || -> Vec<SolveRequest> {
            (0..jobs)
                .map(|j| {
                    let model =
                        if j % 2 == 0 { GpuDevice::TeslaC1060 } else { GpuDevice::TeslaM2050 };
                    let affinity = if j == 0 {
                        DeviceAffinity::Preferred(DeviceId(preferred))
                    } else {
                        DeviceAffinity::Any
                    };
                    gpu_req(&inst, model, seed ^ j as u64, 1).affinity(affinity)
                })
                .collect()
        };
        let placements = |workers: usize| -> Vec<Option<DeviceId>> {
            Engine::new(EngineConfig::with_workers(workers).devices(pool4()))
                .run_batch(batch())
                .into_iter()
                .map(|r| r.expect("job solves").device)
                .collect()
        };
        prop_assert_eq!(placements(1), placements(4));
    }
}

/// Release-mode CI stress: a large mixed-priority GPU batch on a
/// 4-device pool drains completely — no queue starvation, every device
/// participates, and all telemetry balances back to idle.
#[test]
#[ignore = "stress case: minutes in debug; the release-mode device-stress CI job runs it"]
fn device_pool_stress_no_starvation() {
    let insts: Vec<Arc<tsp::TspInstance>> = (0..4)
        .map(|k| Arc::new(tsp::uniform_random(&format!("stress-{k}"), 24 + 6 * k, 500.0, k as u64)))
        .collect();
    let engine = Engine::new(EngineConfig::with_workers(4).devices(pool4()));
    let handles: Vec<_> = (0..48u64)
        .map(|j| {
            let model = if j % 2 == 0 { GpuDevice::TeslaC1060 } else { GpuDevice::TeslaM2050 };
            let priority = match j % 3 {
                0 => Priority::Low,
                1 => Priority::Normal,
                _ => Priority::High,
            };
            engine.submit(gpu_req(&insts[(j % 4) as usize], model, j, 3).priority(priority))
        })
        .collect();
    for h in handles {
        let rep = h.wait().expect("every job completes — nothing starves");
        assert!(rep.device.is_some());
    }
    let stats = engine.device_stats();
    assert_eq!(stats.iter().map(|d| d.completed).sum::<u64>(), 48);
    for d in &stats {
        assert!(d.completed >= 1, "device {} never ran a job: {stats:?}", d.name);
        assert_eq!((d.queued, d.running), (0, 0), "telemetry must drain: {d:?}");
        assert!(d.peak_running <= d.slots, "slot budget violated: {d:?}");
    }
    assert_eq!(engine.outstanding(), 0);
}
