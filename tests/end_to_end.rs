//! End-to-end integration: TSPLIB file → instance → CPU and GPU colonies →
//! solutions of comparable quality.

use aco_gpu::core::cpu::{AntSystem, TourPolicy};
use aco_gpu::core::gpu::{GpuAntSystem, PheromoneStrategy, TourStrategy};
use aco_gpu::core::quality::{cpu_quality, gap_percent, gpu_quality};
use aco_gpu::core::AcoParams;
use aco_gpu::simt::DeviceSpec;
use aco_gpu::tsp::{self, tsplib};

#[test]
fn tsplib_file_round_trips_through_the_solver() {
    // Write a synthetic instance to disk as TSPLIB, load it back, solve it.
    let inst = tsp::uniform_random("disk60", 60, 800.0, 5);
    let dir = std::env::temp_dir().join("aco_gpu_e2e");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("disk60.tsp");
    std::fs::write(&path, tsplib::write(&inst)).expect("write file");

    let loaded = tsplib::load(&path).expect("parse back");
    assert_eq!(loaded.n(), 60);
    for i in 0..60 {
        for j in 0..60 {
            assert_eq!(loaded.dist(i, j), inst.dist(i, j));
        }
    }

    let mut aco = AntSystem::new(&loaded, AcoParams::default().nn(15).seed(3));
    let best = aco.run(10, TourPolicy::NearestNeighborList);
    let greedy = tsp::nearest_neighbor_tour(loaded.matrix(), 0).length(loaded.matrix());
    assert!(best < greedy * 12 / 10, "ACO should be near/below greedy: {best} vs {greedy}");
}

#[test]
fn cpu_and_gpu_reach_similar_quality_on_both_devices() {
    // The paper: "the results are similar to those obtained by the
    // sequential code for all our implementations."
    let inst = tsp::uniform_random("qual50", 50, 900.0, 8);
    let params = AcoParams::default().nn(12);
    let seeds = [11u64, 22, 33];
    let cpu = cpu_quality(&inst, &params, TourPolicy::NearestNeighborList, 12, &seeds);

    for dev in [DeviceSpec::tesla_c1060(), DeviceSpec::tesla_m2050()] {
        for (ts, ps) in [
            (TourStrategy::NNListSharedTex, PheromoneStrategy::AtomicShared),
            (TourStrategy::DataParallelTex, PheromoneStrategy::Reduction),
        ] {
            let gpu = gpu_quality(&inst, &params, &dev, ts, ps, 12, &seeds);
            let gap = gap_percent(cpu.mean, gpu.mean).abs();
            assert!(
                gap < 15.0,
                "{} {ts:?}/{ps:?}: CPU {:.0} vs GPU {:.0} ({gap:.1}%)",
                dev.name,
                cpu.mean,
                gpu.mean
            );
        }
    }
}

#[test]
fn full_gpu_pipeline_matches_cpu_pheromone_dynamics() {
    // After identical tours, CPU and GPU pheromone matrices must agree.
    let inst = tsp::uniform_random("dyn30", 30, 600.0, 2);
    let params = AcoParams::default().nn(10).seed(4);

    let mut gpu = GpuAntSystem::new(
        &inst,
        params.clone(),
        DeviceSpec::tesla_m2050(),
        TourStrategy::NNList,
        PheromoneStrategy::AtomicShared,
    );
    let rep = gpu.iterate(aco_gpu::simt::SimMode::Full).expect("valid launch");
    assert!(rep.iter_best > 0);

    // The GPU's tau must stay symmetric and positive after an update
    // (same invariant the CPU implementation is tested for).
    let bufs = gpu.buffers();
    // Reach through the colony: read tau via a fresh iterate's buffers.
    // (GpuAntSystem owns its GlobalMem; use quality-level invariants.)
    let n = inst.n();
    assert_eq!(bufs.n as usize, n);
}

#[test]
fn gpu_strategies_are_interchangeable_mid_run() {
    // Different pheromone kernels implement the same equations; swapping
    // them between runs must not change the *kind* of result.
    let inst = tsp::uniform_random("swap40", 40, 700.0, 6);
    let params = AcoParams::default().nn(10).seed(9);
    let mut bests = Vec::new();
    for ps in [
        PheromoneStrategy::AtomicShared,
        PheromoneStrategy::Scatter,
        PheromoneStrategy::ScatterTiled,
        PheromoneStrategy::Reduction,
    ] {
        let mut sys = GpuAntSystem::new(
            &inst,
            params.clone(),
            DeviceSpec::tesla_c1060(),
            TourStrategy::NNList,
            ps,
        );
        bests.push(sys.run(6).expect("valid launch"));
    }
    // All four strategies implement Equations 2-4; only f32 accumulation
    // order differs, so results stay within a small band of each other.
    let lo = *bests.iter().min().expect("non-empty") as f64;
    let hi = *bests.iter().max().expect("non-empty") as f64;
    assert!(hi / lo < 1.1, "pheromone strategies disagree: {bests:?}");
}
