//! Integration tests for the job-lifecycle surface: streaming progress,
//! cancellation, deadlines, priority scheduling, and the 2-opt post-pass
//! — the acceptance criteria of the lifecycle refactor.

use std::sync::Arc;
use std::time::{Duration, Instant};

use aco_gpu::core::cpu::{AcsParams, MmasParams, TourPolicy};
use aco_gpu::core::gpu::{PheromoneStrategy, TourStrategy};
use aco_gpu::core::AcoParams;
use aco_gpu::engine::{
    Backend, Engine, EngineConfig, EngineError, GpuDevice, IterationEvent, JobOutcome, JobStatus,
    LocalSearch, Priority, SolveRequest,
};
use aco_gpu::tsp;

fn seq_req(inst: &Arc<tsp::TspInstance>, seed: u64, iterations: usize) -> SolveRequest {
    SolveRequest::new(Arc::clone(inst), AcoParams::default().nn(8).ants(10))
        .backend(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList })
        .iterations(iterations)
        .seed(seed)
}

/// A mixed batch exercising every ctx-driven backend family.
fn mixed_batch(inst: &Arc<tsp::TspInstance>) -> Vec<SolveRequest> {
    let params = AcoParams::default().nn(8).ants(10);
    vec![
        seq_req(inst, 1, 5),
        SolveRequest::new(Arc::clone(inst), params.clone())
            .backend(Backend::CpuParallel { policy: TourPolicy::NearestNeighborList, threads: 3 })
            .iterations(5)
            .seed(2),
        SolveRequest::new(Arc::clone(inst), params.clone())
            .backend(Backend::CpuAcs(AcsParams::default()))
            .iterations(4)
            .seed(3),
        SolveRequest::new(Arc::clone(inst), params.clone())
            .backend(Backend::CpuMmas(MmasParams::default()))
            .iterations(4)
            .seed(4),
        SolveRequest::new(Arc::clone(inst), params.clone())
            .backend(Backend::Gpu {
                device: GpuDevice::TeslaC1060,
                tour: TourStrategy::NNList,
                pheromone: PheromoneStrategy::AtomicShared,
            })
            .iterations(3)
            .seed(5),
        SolveRequest::new(Arc::clone(inst), params)
            .backend(Backend::GpuAcs { device: GpuDevice::TeslaM2050, acs: AcsParams::default() })
            .iterations(3)
            .seed(6),
    ]
}

/// Acceptance: the full progress event sequence — not just the final
/// report — is bit-identical at 1 and 4 workers, for every backend
/// family.
#[test]
fn progress_streams_identical_at_1_and_4_workers() {
    let inst = Arc::new(tsp::uniform_random("life-det", 32, 500.0, 7));
    let collect = |workers: usize| -> Vec<(Vec<IterationEvent>, u64)> {
        let engine = Engine::new(EngineConfig::with_workers(workers));
        let handles: Vec<_> = mixed_batch(&inst).into_iter().map(|r| engine.submit(r)).collect();
        handles
            .into_iter()
            .map(|h| {
                let stream = h.progress();
                let report = h.wait().expect("job solves");
                assert_eq!(report.outcome, JobOutcome::Completed);
                let events: Vec<IterationEvent> = stream.collect();
                assert_eq!(events.len(), report.iterations, "one event per iteration");
                // Events are internally consistent: best-so-far is the
                // running minimum of the iteration bests.
                let mut best = u64::MAX;
                for (k, ev) in events.iter().enumerate() {
                    assert_eq!(ev.iteration, k as u64);
                    best = best.min(ev.iter_best);
                    assert_eq!(ev.best_so_far, best);
                }
                assert_eq!(best, report.best_len);
                (events, report.best_len)
            })
            .collect()
    };
    assert_eq!(collect(1), collect(4), "progress streams must not depend on worker count");
}

/// Acceptance: a mid-flight cancel stops the colony at an iteration
/// boundary well before the requested count, and the partial best is
/// reported with a `Cancelled` outcome.
#[test]
fn cancel_mid_flight_returns_promptly_with_partial_best() {
    let inst = Arc::new(tsp::uniform_random("life-cancel", 48, 700.0, 9));
    let engine = Engine::new(EngineConfig::with_workers(1));
    let iterations = 50_000; // far more than could run in test time
    let h = engine.submit(seq_req(&inst, 1, iterations));
    // Wait until the job demonstrably runs (first iteration event), then
    // cancel and time the turnaround.
    let mut stream = h.progress();
    let first = stream.next().expect("job emits progress");
    assert_eq!(first.iteration, 0);
    let t0 = Instant::now();
    h.cancel();
    let report = h.wait().expect("partial best is reported");
    let turnaround = t0.elapsed();
    assert_eq!(report.outcome, JobOutcome::Cancelled);
    assert!(report.iterations >= 1, "at least the observed iteration completed");
    assert!(
        report.iterations < iterations,
        "cancel must interrupt: ran {} of {iterations}",
        report.iterations
    );
    assert!(report.best_tour.is_valid());
    assert_eq!(report.best_len, report.best_tour.length(inst.matrix()));
    // One iteration on n=48/m=10 is well under a second even in debug;
    // a prompt cancel cannot take longer than a generous multiple.
    assert!(turnaround < Duration::from_secs(10), "cancel took {turnaround:?}");
    assert_eq!(engine.outstanding(), 0, "claimed job frees its slot");
}

/// Cancelling a queued job finalises it immediately — without running a
/// solver, touching the cache, or leaking its result slot.
#[test]
fn cancel_while_queued_is_immediate_and_leaves_cache_untouched() {
    let inst = Arc::new(tsp::uniform_random("life-queue", 40, 600.0, 3));
    let engine = Engine::new(EngineConfig::with_workers(1));
    // Occupy the single worker, then queue a victim behind it.
    let blocker = engine.submit(seq_req(&inst, 1, 50_000));
    let mut blocker_stream = blocker.progress();
    blocker_stream.next().expect("blocker runs");
    let victim = engine.submit(seq_req(&inst, 2, 5));
    assert_eq!(victim.status(), JobStatus::Queued);
    victim.cancel();
    // The cancelled queued job is already finalised: wait returns without
    // the worker ever picking it up.
    assert_eq!(victim.wait(), Err(EngineError::Cancelled));
    assert_eq!(victim.progress().count(), 0, "never ran, no events");
    let stats = engine.cache_stats();
    blocker.cancel();
    assert!(blocker.wait().is_ok(), "blocker reports its partial best");
    assert_eq!(
        stats.artifact_misses + stats.artifact_hits,
        1,
        "only the blocker touched the artifact cache: {stats:?}"
    );
    assert_eq!(engine.outstanding(), 0, "both slots freed after claims");
}

/// Priority scheduling: with one worker busy, a later-submitted job
/// re-prioritised to `High` runs before an earlier `Normal` job.
#[test]
fn set_priority_reorders_queued_jobs() {
    let inst = Arc::new(tsp::uniform_random("life-prio", 40, 600.0, 5));
    let engine = Engine::new(EngineConfig::with_workers(1));
    let blocker = engine.submit(seq_req(&inst, 1, 50_000));
    let mut blocker_stream = blocker.progress();
    blocker_stream.next().expect("blocker runs");

    let normal = engine.submit(seq_req(&inst, 2, 3));
    // Long-running, so it is observably *still running* when we check
    // the normal job below (a short job could finish — and release the
    // worker to the normal job — before this thread gets to look).
    let late = engine.submit(seq_req(&inst, 3, 50_000).priority(Priority::Low));
    assert_eq!(late.priority(), Priority::Low);
    late.set_priority(Priority::High);
    assert_eq!(late.priority(), Priority::High);

    // Release the worker; it must pick the high-priority job first.
    blocker.cancel();
    assert!(blocker.wait().is_ok());
    let mut late_stream = late.progress();
    late_stream.next().expect("high-priority job runs");
    assert_eq!(
        normal.status(),
        JobStatus::Queued,
        "normal job must still be queued while the re-prioritised one runs"
    );
    late.cancel();
    assert!(late.wait().is_ok(), "cancelled mid-flight: partial best");
    assert!(normal.wait().is_ok());
}

/// An already-expired deadline stops the job before its first iteration;
/// a generous one does not perturb the result.
#[test]
fn deadlines_bound_jobs() {
    let inst = Arc::new(tsp::uniform_random("life-deadline", 30, 500.0, 8));
    let engine = Engine::new(EngineConfig::with_workers(1));
    let expired = engine.submit(seq_req(&inst, 1, 5).timeout(Duration::ZERO));
    assert_eq!(expired.wait(), Err(EngineError::DeadlineExpired));

    let roomy = engine.submit(seq_req(&inst, 1, 5).timeout(Duration::from_secs(3600)));
    let baseline = engine.submit(seq_req(&inst, 1, 5));
    let t0 = Instant::now();
    let a = roomy.wait().expect("generous deadline completes");
    assert!(
        t0.elapsed() < Duration::from_secs(60),
        "wait on a deadlined job must return when the job does, not oversleep \
         toward the deadline ({:?})",
        t0.elapsed()
    );
    let b = baseline.wait().expect("no deadline completes");
    assert_eq!(a, b, "an unexercised deadline must not change the result");
}

/// A queued job whose deadline passes while a long blocker holds the
/// only worker is expired by its waiter at the deadline — not whenever a
/// worker finally frees up.
#[test]
fn queued_job_expires_at_its_deadline_behind_a_blocker() {
    let inst = Arc::new(tsp::uniform_random("life-overdue", 40, 600.0, 6));
    let engine = Engine::new(EngineConfig::with_workers(1));
    let blocker = engine.submit(seq_req(&inst, 1, 50_000));
    blocker.progress().next().expect("blocker runs");
    let short = engine.submit(seq_req(&inst, 2, 5).timeout(Duration::from_millis(50)));
    let t0 = Instant::now();
    assert_eq!(short.wait(), Err(EngineError::DeadlineExpired));
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "wait must return at the deadline, not after the blocker ({:?})",
        t0.elapsed()
    );
    blocker.cancel();
    assert!(blocker.wait().is_ok(), "blocker reports its partial best");
}

/// Satellite acceptance: the per-request 2-opt post-pass never worsens
/// the tour, the reported length stays exact, and the quality gain is
/// visible as `local_search_improvement`.
#[test]
fn two_opt_post_pass_never_worsens() {
    let inst = Arc::new(tsp::uniform_random("life-2opt", 60, 900.0, 12));
    let engine = Engine::new(EngineConfig::with_workers(2));
    for backend in [
        Backend::CpuSequential { policy: TourPolicy::NearestNeighborList },
        Backend::CpuAcs(AcsParams::default()),
        Backend::Gpu {
            device: GpuDevice::TeslaC1060,
            tour: TourStrategy::NNList,
            pheromone: PheromoneStrategy::AtomicShared,
        },
    ] {
        let req = SolveRequest::new(Arc::clone(&inst), AcoParams::default().nn(12).ants(10))
            .backend(backend.clone())
            .iterations(3)
            .seed(21);
        let plain = engine.submit(req.clone()).wait().expect("plain job solves");
        assert_eq!(plain.local_search_improvement, 0, "no local search requested");
        let polished = engine
            .submit(req.local_search(LocalSearch::PostPass))
            .wait()
            .expect("2-opt job solves");
        assert!(
            polished.best_len <= plain.best_len,
            "{backend:?}: 2-opt worsened {} -> {}",
            plain.best_len,
            polished.best_len
        );
        assert_eq!(
            polished.local_search_improvement,
            plain.best_len - polished.best_len,
            "{backend:?}: the post-pass reports its exact improvement"
        );
        assert!(polished.best_tour.is_valid());
        assert_eq!(polished.best_len, polished.best_tour.length(inst.matrix()));
        assert_eq!(polished.outcome, JobOutcome::Completed);
    }
}

/// `local_search(LocalSearch::PostPass)` is the one spelling of the
/// end-of-run polish (the pre-`LocalSearch` `two_opt(bool)` builder is
/// gone): the strategy round-trips through the builder and solves.
#[test]
fn post_pass_strategy_round_trips_through_the_builder() {
    let inst = Arc::new(tsp::uniform_random("life-compat", 30, 500.0, 3));
    let req = seq_req(&inst, 1, 2).local_search(LocalSearch::PostPass);
    assert_eq!(req.local_search, LocalSearch::PostPass);
    let req = req.local_search(LocalSearch::None);
    assert_eq!(req.local_search, LocalSearch::None);
    let engine = Engine::new(EngineConfig::with_workers(1));
    let rep = engine
        .submit(seq_req(&inst, 1, 2).local_search(LocalSearch::PostPass))
        .wait()
        .expect("post-pass job solves");
    assert_eq!(rep.best_len, rep.best_tour.length(inst.matrix()));
}

/// Progress buffers are bounded: overflowing drops the oldest events and
/// counts them, keeping the newest.
#[test]
fn progress_buffer_is_bounded_and_counts_drops() {
    let inst = Arc::new(tsp::uniform_random("life-bound", 25, 400.0, 2));
    let engine = Engine::new(EngineConfig::with_workers(1));
    let h = engine.submit(seq_req(&inst, 4, 12).progress_events(4));
    assert!(h.wait().is_ok());
    let stream = h.progress();
    assert_eq!(stream.dropped(), 8, "12 events through a 4-slot buffer");
    let events: Vec<IterationEvent> = stream.collect();
    assert_eq!(events.len(), 4);
    assert_eq!(events.last().expect("non-empty").iteration, 11, "newest events are kept");
}
