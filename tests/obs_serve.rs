//! Integration tests for the serving/alerting read side: the HTTP
//! observability endpoint ([`Engine::serve_observability`]), the rolling
//! window + SLO burn-rate layer, journal SSE resume, and Prometheus
//! text-format conformance.
//!
//! Pinned acceptance properties:
//!
//! * Serving is strictly **read-only**: solve results, placements and
//!   progress streams are bit-identical with serving + windows + journal
//!   on or off, at 1 and 4 workers, even with live HTTP reads mid-run.
//! * Rolling quantiles and burn-rate alert transitions (Ok → Warning →
//!   Critical → Ok with hysteresis) are deterministic under a
//!   [`ManualClock`] — same inputs, byte-identical SLO board JSON.
//! * `/events` resumed from a mid-stream cursor replays **exactly** the
//!   journal suffix, by sequence number.
//! * `/metrics` byte-parses as valid Prometheus text exposition: one
//!   `# TYPE` per base name, no duplicate series, escaped label values,
//!   cumulative buckets monotone with `_count` equal to the `+Inf`
//!   bucket.
//!
//! Latency assertions are structural (counts, monotonicity), never
//! wall-clock thresholds — the CI container has one core.

use std::collections::BTreeMap;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use aco_gpu::core::cpu::{AcsParams, MmasParams, TourPolicy};
use aco_gpu::core::gpu::{PheromoneStrategy, TourStrategy};
use aco_gpu::core::AcoParams;
use aco_gpu::engine::{
    AlertState, Backend, DynamicsConfig, Engine, EngineConfig, GpuDevice, IterationEvent,
    JobOutcome, JournalConfig, LocalSearch, ManualClock, SloBoard, SloObjective, SloSpec,
    SolveRequest, WindowConfig, LATENCY_BUCKETS_MS,
};
use aco_gpu::obs::metrics::{labelled, MetricsRegistry};
use aco_gpu::obs::window::{COMPLETED_TOTAL, FAILED_TOTAL, QUEUE_WAIT_MS, SUBMITTED_TOTAL};
use aco_gpu::obs::RollingWindow;
use aco_gpu::tsp;

// ---------------------------------------------------------------- helpers

/// A mixed batch exercising every backend family (same shape as
/// `tests/observability.rs`), so serving reads race against every
/// span-recording path.
fn mixed_batch(inst: &Arc<tsp::TspInstance>) -> Vec<SolveRequest> {
    let params = AcoParams::default().nn(8).ants(10);
    vec![
        SolveRequest::new(Arc::clone(inst), params.clone())
            .backend(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList })
            .iterations(5)
            .seed(1),
        SolveRequest::new(Arc::clone(inst), params.clone())
            .backend(Backend::CpuParallel { policy: TourPolicy::NearestNeighborList, threads: 3 })
            .iterations(5)
            .seed(2)
            .local_search(LocalSearch::PostPass),
        SolveRequest::new(Arc::clone(inst), params.clone())
            .backend(Backend::CpuAcs(AcsParams::default()))
            .iterations(4)
            .seed(3),
        SolveRequest::new(Arc::clone(inst), params.clone())
            .backend(Backend::CpuMmas(MmasParams::default()))
            .iterations(4)
            .seed(4)
            .local_search(LocalSearch::TwoOptNn),
        SolveRequest::new(Arc::clone(inst), params.clone())
            .backend(Backend::Gpu {
                device: GpuDevice::TeslaC1060,
                tour: TourStrategy::NNList,
                pheromone: PheromoneStrategy::AtomicShared,
            })
            .iterations(3)
            .seed(5)
            .local_search(LocalSearch::TwoOptNn),
        SolveRequest::new(Arc::clone(inst), params.clone())
            .backend(Backend::GpuAcs { device: GpuDevice::TeslaM2050, acs: AcsParams::default() })
            .iterations(3)
            .seed(6),
        SolveRequest::new(Arc::clone(inst), params).backend(Backend::Auto).iterations(3).seed(7),
    ]
}

/// Everything observable about a batch that must not depend on the
/// serving setting or the worker count.
type BatchFingerprint = Vec<(u64, Vec<u32>, Option<u32>, Vec<IterationEvent>)>;

/// Blocking GET over a raw `TcpStream` (no HTTP client dependency).
/// Returns `(status, head, body)`.
fn http_get(addr: SocketAddr, target: &str, extra_header: Option<&str>) -> (u16, String, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    let extra = extra_header.map(|h| format!("{h}\r\n")).unwrap_or_default();
    write!(s, "GET {target} HTTP/1.1\r\nHost: test\r\n{extra}Connection: close\r\n\r\n")
        .expect("send request");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read response");
    let (head, body) = out.split_once("\r\n\r\n").expect("head/body split");
    let status =
        head.split_whitespace().nth(1).and_then(|code| code.parse().ok()).expect("status code");
    (status, head.to_string(), body.to_string())
}

/// Parse an SSE body (`id: <seq>\ndata: <payload>\n\n` frames) back into
/// `(seq, payload)` pairs.
fn parse_sse(body: &str) -> Vec<(u64, String)> {
    body.split("\n\n")
        .filter(|frame| !frame.trim().is_empty())
        .map(|frame| {
            let mut id = None;
            let mut data = None;
            for line in frame.lines() {
                if let Some(v) = line.strip_prefix("id: ") {
                    id = Some(v.parse().expect("numeric id"));
                } else if let Some(v) = line.strip_prefix("data: ") {
                    data = Some(v.to_string());
                }
            }
            (id.expect("frame has id"), data.expect("frame has data"))
        })
        .collect()
}

fn run_batch(workers: usize, serve: bool, inst: &Arc<tsp::TspInstance>) -> BatchFingerprint {
    let config = if serve {
        EngineConfig::with_workers(workers)
            .windows(WindowConfig::default().bucket_ms(25))
            .journal(JournalConfig::default())
    } else {
        EngineConfig::with_workers(workers)
    };
    let engine = Engine::new(config);
    let server = serve.then(|| engine.serve_observability("127.0.0.1:0").expect("bind endpoint"));
    let handles: Vec<_> = mixed_batch(inst).into_iter().map(|r| engine.submit(r)).collect();
    // Live reads mid-run: every route answers while the batch executes,
    // and none of them may perturb the solve.
    if let Some(srv) = &server {
        for path in ["/", "/metrics", "/metrics.json", "/healthz", "/slo", "/dashboard"] {
            let (status, _, _) = http_get(srv.local_addr(), path, None);
            assert_eq!(status, 200, "GET {path} failed mid-run");
        }
    }
    let fp: BatchFingerprint = handles
        .into_iter()
        .map(|h| {
            let stream = h.progress();
            let report = h.wait().expect("job solves");
            assert_eq!(report.outcome, JobOutcome::Completed);
            let events: Vec<IterationEvent> = stream.collect();
            (report.best_len, report.best_tour.order().to_vec(), report.device.map(|d| d.0), events)
        })
        .collect();
    if let Some(mut srv) = server {
        srv.shutdown();
    }
    fp
}

// ---------------------------------------- (a) serving is strictly read-only

/// Acceptance: results, placements and progress sequences are
/// bit-identical with serving + windows + journal on or off, at 1 and 4
/// workers, even with concurrent HTTP reads mid-batch.
#[test]
fn results_identical_with_serving_and_windows_on_off_at_1_and_4_workers() {
    let inst = Arc::new(tsp::uniform_random("serve-det", 32, 500.0, 13));
    let baseline = run_batch(1, false, &inst);
    for (workers, serve) in [(1, true), (4, false), (4, true)] {
        assert_eq!(
            baseline,
            run_batch(workers, serve, &inst),
            "batch changed at workers={workers} serve={serve}"
        );
    }
}

// ------------------- (b) deterministic windows + burn-rate under ManualClock

/// One full scripted drive of a failure-rate SLO over a rolling window:
/// returns the observed state sequence and the final board JSON.
fn drive_burn_cycle() -> (Vec<AlertState>, String) {
    let windows = RollingWindow::new(WindowConfig::default().bucket_ms(1_000).buckets(600));
    let reg = MetricsRegistry::new(true);
    let submitted = reg.counter(SUBMITTED_TOTAL);
    let done = reg.counter(COMPLETED_TOTAL);
    let failed = reg.counter(FAILED_TOTAL);
    let spec = SloSpec::new("avail", SloObjective::FailureRate { budget: 0.01 })
        .windows(10_000, 2_000)
        .burns(1.0, 20.0)
        .hysteresis(0.8, 2);
    let mut board = SloBoard::new(vec![spec]);
    let devices = vec![("gpu0".to_string(), 0u8)];
    let mut states = Vec::new();
    // Scripted traffic, 1 tick/s: 3 s clean, 12 s at 30% failures, then
    // clean recovery. Every quantity is a pure function of this script.
    let script: Vec<(u64, u64)> = std::iter::repeat_n((100, 0), 3)
        .chain(std::iter::repeat_n((70, 30), 12))
        .chain(std::iter::repeat_n((100, 0), 15))
        .collect();
    for (i, (ok, bad)) in script.into_iter().enumerate() {
        let t = i as u64 * 1_000;
        submitted.add(ok + bad);
        done.add(ok);
        failed.add(bad);
        windows.record(t, reg.snapshot());
        states.push(board.evaluate(&windows, &devices, t));
    }
    (states, board.to_json())
}

/// Acceptance: the Ok → Warning → Critical → Warning → Ok cycle (with
/// hysteresis on the way down) is a deterministic function of the
/// recorded frames and evaluation times — two runs agree byte-for-byte.
#[test]
fn burn_rate_transitions_are_deterministic_and_walk_the_full_cycle() {
    let (states, json) = drive_burn_cycle();
    let (states2, json2) = drive_burn_cycle();
    assert_eq!(states, states2, "state sequence is deterministic");
    assert_eq!(json, json2, "board JSON is byte-identical across runs");
    // The cycle shape: starts Ok, visits Warning then Critical (in that
    // order), recovers to Ok, and never skips a level on the way down.
    assert_eq!(states[0], AlertState::Ok);
    assert_eq!(*states.last().unwrap(), AlertState::Ok, "fully recovers");
    let first_warn = states.iter().position(|s| *s == AlertState::Warning).expect("warns");
    let first_crit = states.iter().position(|s| *s == AlertState::Critical).expect("goes critical");
    assert!(first_warn < first_crit, "warning precedes critical");
    let last_crit = states.iter().rposition(|s| *s == AlertState::Critical).unwrap();
    let after: Vec<AlertState> = states[last_crit + 1..].to_vec();
    assert!(
        after.windows(2).all(|w| w[1] <= w[0]),
        "recovery is monotone non-increasing: {after:?}"
    );
    assert!(
        after.contains(&AlertState::Warning),
        "steps down through Warning, never Critical→Ok directly"
    );
    // Hysteresis (clear_after=2): at least 2 evaluations spent in
    // Warning on the way down.
    let warn_tail = after.iter().filter(|s| **s == AlertState::Warning).count();
    assert!(warn_tail >= 2, "hysteresis holds Warning for {warn_tail} evals");
    assert!(json.contains("\"name\":\"avail\""));
    assert!(json.contains("failure-rate burn"));
}

/// Rolling quantiles interpolate deterministically from the pinned
/// buckets: 200 observations in the (5, 10] ms bucket give exactly
/// p50 = 7.5, p95 = 9.75, p99 = 9.95.
#[test]
fn rolling_quantiles_are_exact_under_a_scripted_clock() {
    let windows = RollingWindow::new(WindowConfig::default().bucket_ms(1_000));
    let reg = MetricsRegistry::new(true);
    let wait = reg.histogram(QUEUE_WAIT_MS, &LATENCY_BUCKETS_MS);
    windows.record(0, reg.snapshot());
    for _ in 0..200 {
        wait.observe(7.0); // lands in the (5, 10] bucket
    }
    windows.record(1_000, reg.snapshot());
    let q = windows.quantiles(QUEUE_WAIT_MS, 1_000, 1_000).expect("two frames");
    assert_eq!(q.count, 200);
    assert_eq!(q.p50, 7.5);
    assert_eq!(q.p95, 9.75);
    assert_eq!(q.p99, 9.95);
    // Observations older than the window edge fall out: a later frame
    // with no new observations reports an empty window.
    windows.record(5_000, reg.snapshot());
    let empty = windows.quantiles(QUEUE_WAIT_MS, 5_000, 2_000).expect("frames exist");
    assert_eq!(empty.count, 0, "old observations age out of the window");
}

/// Engine-level windows under an injected [`ManualClock`]: tick counts
/// are exact (7 jobs through both latency histograms), the structural
/// SLOs report Ok, and `/healthz` aggregates it all. The latency SLO is
/// deliberately left off the board here — real queue waits on a loaded
/// 1-core CI box can legitimately exceed any fixed threshold, and this
/// test pins deterministic quantities only.
#[test]
fn engine_window_stats_are_exact_under_manual_clock() {
    let clock = Arc::new(ManualClock::new());
    let structural = vec![
        SloSpec::new("job-availability", SloObjective::FailureRate { budget: 0.01 }),
        SloSpec::new("device-health", SloObjective::DeviceHealth),
        SloSpec::new("device-fault-rate", SloObjective::DeviceFaultRate { budget_per_sec: 0.5 }),
    ];
    let engine = Engine::new(
        EngineConfig::with_workers(2)
            .windows(WindowConfig::default().bucket_ms(1_000))
            .slos(structural)
            .clock(clock.clone()),
    );
    assert!(engine.tick_windows().is_some(), "window layer is armed");
    assert!(engine.window_stats(1_000).is_none(), "one frame is not a window");
    let inst = Arc::new(tsp::uniform_random("serve-win", 32, 500.0, 13));
    let handles: Vec<_> = mixed_batch(&inst).into_iter().map(|r| engine.submit(r)).collect();
    for h in handles {
        h.wait().expect("job solves");
    }
    clock.set(1_000);
    assert_eq!(engine.tick_windows(), Some(AlertState::Ok), "healthy batch stays Ok");
    let stats = engine.window_stats(1_000).expect("two frames bracket the batch");
    assert_eq!(stats.span_ms, 1_000);
    assert_eq!(stats.submitted, 7);
    assert_eq!(stats.completed, 7);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.failure_rate, 0.0);
    assert_eq!(stats.throughput_per_sec, 7.0);
    assert_eq!(stats.queue_wait.count, 7, "one queue-wait observation per job");
    assert_eq!(stats.solve_wall.count, 7, "one solve-wall observation per job");
    assert!(!stats.devices.is_empty(), "default pool surfaces per-device windows");
    let statuses = engine.slo_statuses();
    assert_eq!(statuses.len(), 3, "configured SLO board");
    assert!(statuses.iter().all(|s| s.state == AlertState::Ok), "{statuses:?}");
    // Configuring windows without explicit SLOs installs the default
    // 4-spec board (availability, queue-wait, health, fault rate).
    let defaulted = Engine::new(EngineConfig::with_workers(1).windows(WindowConfig::default()));
    assert_eq!(defaulted.slo_statuses().len(), 4, "default SLO board");
    let health = engine.healthz_json();
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    assert!(health.contains("\"submitted\":7"));
    assert!(health.contains("\"completed\":7"));
    assert!(health.contains("\"devices_quarantined\":0"));
    assert!(health.contains("\"alerts\":["));
}

// -------------------------------------------- (c) /events SSE exact resume

/// Acceptance: `/events` resumed from a mid-stream cursor (both
/// `?from=` and `Last-Event-ID`) replays exactly the journal suffix,
/// sequence numbers included; `?from=0` starts at the epoch meta line.
#[test]
fn events_sse_resume_replays_exactly_the_journal_suffix() {
    let engine = Engine::new(EngineConfig::with_workers(2).journal(JournalConfig::default()));
    let server = engine.serve_observability("127.0.0.1:0").expect("bind endpoint");
    let addr = server.local_addr();
    let inst = Arc::new(tsp::uniform_random("serve-sse", 32, 500.0, 13));
    let handles: Vec<_> = mixed_batch(&inst).into_iter().map(|r| engine.submit(r)).collect();
    for h in handles {
        h.wait().expect("job solves");
    }
    // The batch is done, so the journal is stable from here on.
    let journal = engine.journal().expect("journal configured");
    let total = journal.next_seq();
    assert!(total >= 8, "batch journals plenty of events (got {total})");
    let mid = total / 2;
    let expect = journal.export_from(mid);
    assert_eq!(expect.first().map(|(seq, _)| *seq), Some(mid), "suffix starts at the cursor");

    let (status, head, body) =
        http_get(addr, &format!("/events?from={mid}&max={}", expect.len()), None);
    assert_eq!(status, 200);
    assert!(head.contains("Content-Type: text/event-stream"), "{head}");
    assert_eq!(parse_sse(&body), expect, "?from= replays exactly the journal suffix");

    // Last-Event-ID: the client saw `mid - 1`, so the stream resumes at
    // `mid` — the identical suffix.
    let (_, _, resumed) = http_get(
        addr,
        &format!("/events?max={}", expect.len()),
        Some(&format!("Last-Event-ID: {}", mid - 1)),
    );
    assert_eq!(parse_sse(&resumed), expect, "Last-Event-ID resumes one past the cursor");

    // From the very beginning: seq 0 is the epoch meta line, and its
    // epoch matches the journal's own anchor.
    let (_, _, first) = http_get(addr, "/events?max=1", None);
    let frames = parse_sse(&first);
    assert_eq!(frames.len(), 1);
    assert_eq!(frames[0].0, 0, "stream starts at seq 0");
    assert!(frames[0].1.contains("\"ev\":\"meta\""), "{}", frames[0].1);
    let epoch = journal.epoch_ms().expect("engine anchors the journal epoch");
    assert!(frames[0].1.contains(&format!("\"epoch_ms\":{epoch}")), "{}", frames[0].1);
}

/// Without a journal, `/events` is a clean 404 (not a hang or a crash).
#[test]
fn events_without_a_journal_is_a_404() {
    let engine = Engine::new(EngineConfig::with_workers(1));
    let server = engine.serve_observability("127.0.0.1:0").expect("bind endpoint");
    let (status, _, body) = http_get(server.local_addr(), "/events?max=1", None);
    assert_eq!(status, 404);
    assert!(body.contains("no journal configured"), "{body}");
}

// ----------------------------- (d) Prometheus text exposition conformance

/// One parsed sample line: base name, label pairs (unescaped values),
/// raw series key, numeric value.
#[derive(Debug)]
struct Sample {
    base: String,
    labels: Vec<(String, String)>,
    series: String,
    value: f64,
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

fn valid_label_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .enumerate()
            .all(|(i, c)| c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit()))
}

/// Parse one Prometheus sample line (`name{labels} value`), validating
/// the v0.0.4 text grammar as it goes. Panics (failing the test) on any
/// malformed construct.
fn parse_sample(line: &str) -> Sample {
    let mut chars = line.char_indices().peekable();
    let mut base_end = line.len();
    for (i, c) in chars.by_ref() {
        if c == '{' || c == ' ' {
            base_end = i;
            break;
        }
    }
    let base = &line[..base_end];
    assert!(valid_metric_name(base), "bad metric name in {line:?}");
    let rest = &line[base_end..];
    let (labels, value_str) = if let Some(tail) = rest.strip_prefix('{') {
        let mut labels = Vec::new();
        let mut it = tail.chars().peekable();
        loop {
            // label name
            let mut name = String::new();
            for c in it.by_ref() {
                if c == '=' {
                    break;
                }
                name.push(c);
            }
            assert!(valid_label_name(&name), "bad label name {name:?} in {line:?}");
            assert_eq!(it.next(), Some('"'), "label value must be quoted in {line:?}");
            let mut value = String::new();
            loop {
                match it.next().expect("unterminated label value") {
                    '"' => break,
                    '\\' => match it.next().expect("dangling escape") {
                        '\\' => value.push('\\'),
                        '"' => value.push('"'),
                        'n' => value.push('\n'),
                        c => panic!("invalid escape \\{c} in {line:?}"),
                    },
                    c => {
                        assert!((c as u32) >= 0x20, "raw control byte in label value: {line:?}");
                        value.push(c);
                    }
                }
            }
            labels.push((name, value));
            match it.next() {
                Some(',') => continue,
                Some('}') => break,
                other => panic!("expected , or }} after label, got {other:?} in {line:?}"),
            }
        }
        let rest: String = it.collect();
        let value_str = rest.strip_prefix(' ').expect("space before value").to_string();
        (labels, value_str)
    } else {
        (Vec::new(), rest.strip_prefix(' ').expect("space before value").to_string())
    };
    let value: f64 = value_str.trim().parse().unwrap_or_else(|_| {
        panic!("unparseable sample value {value_str:?} in {line:?}");
    });
    let series = line.rsplit_once(' ').expect("series/value split").0.to_string();
    Sample { base: base.to_string(), labels, series, value }
}

/// Validate a full Prometheus text document; returns the parsed samples
/// and the `# TYPE` map.
fn validate_prometheus(text: &str) -> (Vec<Sample>, BTreeMap<String, String>) {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut samples = Vec::new();
    let mut seen_series = std::collections::BTreeSet::new();
    for line in text.lines() {
        assert!(!line.trim().is_empty(), "blank line inside exposition");
        if let Some(meta) = line.strip_prefix("# TYPE ") {
            let mut parts = meta.split(' ');
            let name = parts.next().expect("TYPE name");
            let kind = parts.next().expect("TYPE kind");
            assert!(parts.next().is_none(), "trailing tokens in {line:?}");
            assert!(valid_metric_name(name), "bad TYPE name in {line:?}");
            assert!(
                ["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind),
                "unknown TYPE kind in {line:?}"
            );
            let prev = types.insert(name.to_string(), kind.to_string());
            assert!(prev.is_none(), "duplicate # TYPE for {name}");
        } else if line.starts_with('#') {
            assert!(line.starts_with("# HELP "), "unknown comment form: {line:?}");
        } else {
            let sample = parse_sample(line);
            assert!(
                seen_series.insert(sample.series.clone()),
                "duplicate series {:?}",
                sample.series
            );
            samples.push(sample);
        }
    }
    // Every sample's base name traces back to exactly one declared TYPE
    // (histogram children via their _bucket/_sum/_count suffixes).
    for s in &samples {
        let owner = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| {
                let stem = s.base.strip_suffix(suf)?;
                (types.get(stem).map(String::as_str) == Some("histogram")).then(|| stem.to_string())
            })
            .unwrap_or_else(|| s.base.clone());
        assert!(types.contains_key(&owner), "sample {:?} has no # TYPE", s.series);
    }
    // Histogram conservation: cumulative buckets monotone, last bucket
    // is +Inf, and _count equals the +Inf bucket.
    let hist_bases: Vec<String> = types
        .iter()
        .filter(|(_, kind)| kind.as_str() == "histogram")
        .map(|(name, _)| name.clone())
        .collect();
    for base in hist_bases {
        let buckets: Vec<&Sample> =
            samples.iter().filter(|s| s.base == format!("{base}_bucket")).collect();
        assert!(!buckets.is_empty(), "histogram {base} has no buckets");
        let mut prev = 0.0;
        for b in &buckets {
            assert!(b.value >= prev, "non-monotone cumulative buckets for {base}");
            prev = b.value;
            assert!(b.labels.iter().any(|(k, _)| k == "le"), "bucket without le label for {base}");
        }
        let last_le = &buckets.last().unwrap().labels.iter().find(|(k, _)| k == "le").unwrap().1;
        assert_eq!(last_le, "+Inf", "last bucket of {base} must be +Inf");
        let count = samples
            .iter()
            .find(|s| s.base == format!("{base}_count"))
            .unwrap_or_else(|| panic!("missing {base}_count"))
            .value;
        assert_eq!(count, buckets.last().unwrap().value, "{base}_count == +Inf bucket");
        assert!(samples.iter().any(|s| s.base == format!("{base}_sum")), "missing {base}_sum");
    }
    (samples, types)
}

/// Acceptance: the full engine exposition — served over HTTP — byte-
/// parses as valid Prometheus text, with one `# TYPE` per base name,
/// no duplicate series, and conserved histogram buckets.
#[test]
fn metrics_endpoint_byte_parses_as_valid_prometheus_text() {
    // Dynamics on, so the entropy/λ-branching gauge pairs (milli +
    // float twin) are in the exposition too.
    let engine = Engine::new(
        EngineConfig::with_workers(2)
            .windows(WindowConfig::default())
            .dynamics(DynamicsConfig::default()),
    );
    let server = engine.serve_observability("127.0.0.1:0").expect("bind endpoint");
    let inst = Arc::new(tsp::uniform_random("serve-prom", 32, 500.0, 13));
    let handles: Vec<_> = mixed_batch(&inst).into_iter().map(|r| engine.submit(r)).collect();
    for h in handles {
        h.wait().expect("job solves");
    }
    let (status, head, body) = http_get(server.local_addr(), "/metrics", None);
    assert_eq!(status, 200);
    assert!(head.contains("Content-Type: text/plain"), "{head}");
    let (samples, types) = validate_prometheus(&body);
    // The in-process render passes the same conformance sweep. (The two
    // documents are snapshots taken at different instants, so
    // time-derived gauges differ — structure, not bytes, is the
    // contract.)
    validate_prometheus(&engine.metrics().to_prometheus());
    // Spot checks: the stable engine surface is present and typed.
    for (name, kind) in [
        (SUBMITTED_TOTAL, "counter"),
        (COMPLETED_TOTAL, "counter"),
        ("aco_engine_queue_wait_ms", "histogram"),
        ("aco_engine_solve_wall_ms", "histogram"),
    ] {
        assert_eq!(types.get(name).map(String::as_str), Some(kind), "{name}");
    }
    // Labelled per-device series parse with their label intact.
    assert!(
        samples.iter().any(|s| s.labels.iter().any(|(k, _)| k == "device")),
        "per-device labelled series present"
    );
    // Float-gauge twins export alongside the stable milli-gauges.
    assert!(types.keys().any(|n| n == "aco_job_entropy"), "float twin exported");
    assert!(types.keys().any(|n| n == "aco_job_entropy_milli"), "milli gauge kept");
}

/// `metrics::labelled` escaping survives the round trip through the
/// exposition parser: quotes, backslashes and newlines in a label value
/// come back intact and never corrupt the document.
#[test]
fn labelled_series_escaping_round_trips_through_the_parser() {
    let reg = MetricsRegistry::new(true);
    let hostile = "gpu\"0\\path\nline";
    reg.counter(&labelled("aco_device_faults_observed_total", "device", hostile)).add(3);
    reg.counter("aco_plain_total").add(1);
    let text = reg.snapshot().to_prometheus();
    let (samples, _) = validate_prometheus(&text);
    let labelled_sample =
        samples.iter().find(|s| !s.labels.is_empty()).expect("labelled series present");
    assert_eq!(labelled_sample.labels, vec![("device".to_string(), hostile.to_string())]);
    assert_eq!(labelled_sample.value, 3.0);
}
