//! Serial vs parallel block execution: for **every** kernel family in the
//! reproduction, a launch executed across host threads must produce
//! bit-identical `KernelStats` counters and bit-identical global-memory
//! contents to the serial launch, at every thread count. This is the
//! contract `aco_simt::launch_threads` documents and the engine's
//! determinism ultimately rests on.

use aco_gpu::core::gpu::{
    run_pheromone_threads, run_tour_threads, ColonyBuffers, PheromoneStrategy, TourStrategy,
};
use aco_gpu::core::AcoParams;
use aco_gpu::simt::prelude::*;
use aco_gpu::simt::DeviceSpec;
use aco_gpu::tsp;

const THREADS: [usize; 3] = [2, 3, 7];

fn devices() -> [DeviceSpec; 2] {
    [DeviceSpec::tesla_c1060(), DeviceSpec::tesla_m2050()]
}

/// Fresh colony memory for a deterministic instance.
fn colony(n: usize, dev_seed: u64) -> (GlobalMem, ColonyBuffers) {
    let inst = tsp::uniform_random("par-launch", n, 900.0, dev_seed);
    let mut gm = GlobalMem::new();
    let bufs = ColonyBuffers::allocate(&mut gm, &inst, &AcoParams::default().nn(10).ants(14));
    (gm, bufs)
}

/// Bitwise comparison of every colony buffer both runs share.
fn assert_memory_identical(a: &GlobalMem, b: &GlobalMem, bufs: ColonyBuffers, what: &str) {
    let f32_bits = |gm: &GlobalMem, p| gm.f32(p).iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
    assert_eq!(a.u32(bufs.tours), b.u32(bufs.tours), "{what}: tours differ");
    assert_eq!(f32_bits(a, bufs.lengths), f32_bits(b, bufs.lengths), "{what}: lengths differ");
    assert_eq!(f32_bits(a, bufs.tau), f32_bits(b, bufs.tau), "{what}: tau differs");
    assert_eq!(f32_bits(a, bufs.choice), f32_bits(b, bufs.choice), "{what}: choice differs");
}

#[test]
fn every_tour_strategy_is_thread_count_invariant() {
    for dev in devices() {
        for strategy in TourStrategy::ALL {
            let (mut gm_serial, bufs_s) = colony(40, 7);
            let serial = run_tour_threads(
                &dev,
                &mut gm_serial,
                bufs_s,
                strategy,
                1.0,
                2.0,
                11,
                0,
                SimMode::Full,
                1,
            )
            .unwrap();
            for threads in THREADS {
                let (mut gm_par, bufs_p) = colony(40, 7);
                let par = run_tour_threads(
                    &dev,
                    &mut gm_par,
                    bufs_p,
                    strategy,
                    1.0,
                    2.0,
                    11,
                    0,
                    SimMode::Full,
                    threads,
                )
                .unwrap();
                let what = format!("{} {strategy:?} x{threads}", dev.name);
                assert_eq!(serial.stats, par.stats, "{what}: stats differ");
                assert_eq!(
                    serial.total_ms().to_bits(),
                    par.total_ms().to_bits(),
                    "{what}: modeled time differs"
                );
                assert_memory_identical(&gm_serial, &gm_par, bufs_s, &what);
            }
        }
    }
}

#[test]
fn every_pheromone_strategy_is_thread_count_invariant() {
    for dev in devices() {
        for strategy in PheromoneStrategy::ALL {
            // Construct tours first so the update has real deposits.
            let prepare = |threads: usize| {
                let (mut gm, bufs) = colony(36, 9);
                run_tour_threads(
                    &dev,
                    &mut gm,
                    bufs,
                    TourStrategy::NNList,
                    1.0,
                    2.0,
                    5,
                    0,
                    SimMode::Full,
                    threads,
                )
                .unwrap();
                (gm, bufs)
            };
            let (mut gm_serial, bufs_s) = prepare(1);
            let serial = run_pheromone_threads(
                &dev,
                &mut gm_serial,
                bufs_s,
                strategy,
                0.5,
                SimMode::Full,
                1,
            )
            .unwrap();
            for threads in THREADS {
                let (mut gm_par, bufs_p) = prepare(threads);
                let par = run_pheromone_threads(
                    &dev,
                    &mut gm_par,
                    bufs_p,
                    strategy,
                    0.5,
                    SimMode::Full,
                    threads,
                )
                .unwrap();
                let what = format!("{} {strategy:?} x{threads}", dev.name);
                assert_eq!(serial.stats, par.stats, "{what}: stats differ");
                assert_eq!(
                    serial.time.total_ms.to_bits(),
                    par.time.total_ms.to_bits(),
                    "{what}: modeled time differs"
                );
                assert_memory_identical(&gm_serial, &gm_par, bufs_s, &what);
            }
        }
    }
}

#[test]
fn sampled_launches_are_thread_count_invariant_too() {
    let dev = DeviceSpec::tesla_c1060();
    let (mut gm_serial, bufs_s) = colony(64, 3);
    let serial = run_tour_threads(
        &dev,
        &mut gm_serial,
        bufs_s,
        TourStrategy::DataParallel,
        1.0,
        2.0,
        4,
        1,
        SimMode::SampleBlocks(5),
        1,
    )
    .unwrap();
    for threads in THREADS {
        let (mut gm_par, bufs_p) = colony(64, 3);
        let par = run_tour_threads(
            &dev,
            &mut gm_par,
            bufs_p,
            TourStrategy::DataParallel,
            1.0,
            2.0,
            4,
            1,
            SimMode::SampleBlocks(5),
            threads,
        )
        .unwrap();
        assert_eq!(serial.stats, par.stats);
        assert_memory_identical(&gm_serial, &gm_par, bufs_s, &format!("sampled x{threads}"));
    }
}

#[test]
fn gpu_system_full_runs_are_thread_count_invariant() {
    use aco_gpu::core::gpu::GpuAntSystem;
    let inst = tsp::uniform_random("sys-par", 38, 800.0, 21);
    let run = |threads: usize| {
        let mut sys = GpuAntSystem::new(
            &inst,
            AcoParams::default().nn(10).seed(13).ants(12),
            DeviceSpec::tesla_m2050(),
            TourStrategy::DataParallelTex,
            PheromoneStrategy::AtomicShared,
        );
        sys.set_exec_threads(threads);
        let mut ms = 0.0;
        let mut bests = Vec::new();
        for _ in 0..3 {
            let rep = sys.iterate(SimMode::Full).unwrap();
            ms += rep.tour_ms + rep.pheromone_ms;
            bests.push(rep.best_so_far);
        }
        (bests, ms.to_bits())
    };
    let serial = run(1);
    for threads in THREADS {
        assert_eq!(serial, run(threads), "x{threads}");
    }
}
