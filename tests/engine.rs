//! Integration tests for the batch engine: worker-count determinism over
//! a mixed batch, artifact-cache reuse, and auto-backend resolution.

use std::sync::Arc;

use aco_gpu::core::cpu::{AcsParams, MmasParams, TourPolicy};
use aco_gpu::core::gpu::{PheromoneStrategy, TourStrategy};
use aco_gpu::core::AcoParams;
use aco_gpu::engine::{Backend, Engine, EngineConfig, GpuDevice, SolveRequest};
use aco_gpu::tsp;

/// A batch of ≥ 8 jobs mixing instance sizes and CPU / GPU / auto
/// backends, two of them sharing one instance (cache reuse).
fn mixed_batch() -> Vec<SolveRequest> {
    let small = Arc::new(tsp::uniform_random("batch30", 30, 500.0, 1));
    let mid = Arc::new(tsp::uniform_random("batch42", 42, 700.0, 2));
    let large = Arc::new(tsp::uniform_random("batch56", 56, 900.0, 3));
    let params = |nn: usize| AcoParams::default().nn(nn).ants(12);

    vec![
        SolveRequest::new(Arc::clone(&small), params(8))
            .backend(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList })
            .iterations(5)
            .seed(101),
        SolveRequest::new(Arc::clone(&small), params(8))
            .backend(Backend::CpuParallel { policy: TourPolicy::NearestNeighborList, threads: 3 })
            .iterations(5)
            .seed(102),
        SolveRequest::new(Arc::clone(&mid), params(10))
            .backend(Backend::Gpu {
                device: GpuDevice::TeslaC1060,
                tour: TourStrategy::NNList,
                pheromone: PheromoneStrategy::AtomicShared,
            })
            .iterations(4)
            .seed(103),
        SolveRequest::new(Arc::clone(&mid), params(10))
            .backend(Backend::Gpu {
                device: GpuDevice::TeslaM2050,
                tour: TourStrategy::DataParallelTex,
                pheromone: PheromoneStrategy::Reduction,
            })
            .iterations(4)
            .seed(104),
        SolveRequest::new(Arc::clone(&large), params(10))
            .backend(Backend::CpuAcs(AcsParams::default()))
            .iterations(6)
            .seed(105),
        SolveRequest::new(Arc::clone(&large), params(10))
            .backend(Backend::CpuMmas(MmasParams::default()))
            .iterations(4)
            .seed(106),
        SolveRequest::new(Arc::clone(&small), params(8))
            .backend(Backend::Auto)
            .iterations(4)
            .seed(107),
        SolveRequest::new(Arc::clone(&large), params(10))
            .backend(Backend::Auto)
            .iterations(3)
            .seed(108),
        SolveRequest::new(Arc::clone(&mid), params(10))
            .backend(Backend::GpuAcs { device: GpuDevice::TeslaC1060, acs: AcsParams::default() })
            .iterations(3)
            .seed(109),
    ]
}

#[test]
fn four_worker_batch_is_bit_identical_to_serial_execution() {
    // The acceptance criterion: ≥ 8 mixed jobs, 4 workers vs 1 worker,
    // identical SolveReports (tours, lengths, modeled times, backends).
    let serial: Vec<_> = Engine::new(EngineConfig::with_workers(1)).run_batch(mixed_batch());
    let parallel: Vec<_> = Engine::new(EngineConfig::with_workers(4)).run_batch(mixed_batch());

    assert_eq!(serial.len(), parallel.len());
    assert!(serial.len() >= 8, "acceptance requires at least 8 jobs");
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s, p, "job {i} differs between 1-worker and 4-worker runs");
    }
    // Results are exact: each report's length recomputes from its tour on
    // the instance the request named (batch order == result order).
    for (req, r) in mixed_batch().iter().zip(&serial) {
        let rep = r.as_ref().expect("every job solves");
        assert!(rep.best_tour.is_valid());
        assert_eq!(rep.instance, req.instance.name());
        assert_eq!(rep.best_len, rep.best_tour.length(req.instance.matrix()));
    }
}

#[test]
fn reports_are_internally_consistent() {
    let engine = Engine::new(EngineConfig::with_workers(4));
    for r in engine.run_batch(mixed_batch()) {
        let rep = r.expect("every job solves");
        assert!(rep.best_tour.is_valid(), "{}: invalid tour", rep.instance);
        assert_eq!(rep.best_tour.n(), rep.n);
        assert!(rep.best_len > 0);
        assert!(rep.modeled_ms > 0.0, "{:?}: no modeled time", rep.backend);
        assert!(!matches!(rep.backend, Backend::Auto), "auto must resolve");
        assert_eq!(rep.outcome, aco_gpu::engine::JobOutcome::Completed);
    }
}

#[test]
fn second_job_on_an_instance_reuses_cached_artifacts() {
    let inst = Arc::new(tsp::uniform_random("cached", 36, 600.0, 9));
    let engine = Engine::new(EngineConfig::with_workers(1));
    let req = |seed: u64| {
        SolveRequest::new(Arc::clone(&inst), AcoParams::default().nn(10).ants(10))
            .backend(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList })
            .iterations(3)
            .seed(seed)
    };
    let a = engine.submit(req(1)).wait().expect("job 1");
    let stats_after_first = engine.cache_stats();
    let b = engine.submit(req(2)).wait().expect("job 2");
    let stats_after_second = engine.cache_stats();

    assert_eq!(stats_after_first.artifact_misses, 1, "first job builds the NN lists");
    assert_eq!(stats_after_second.artifact_misses, 1, "second job must not rebuild");
    assert_eq!(
        stats_after_second.artifact_hits,
        stats_after_first.artifact_hits + 1,
        "second job reuses the cached NN lists"
    );
    // Different seeds still explore independently.
    assert_eq!(a.n, b.n);
}

#[test]
fn auto_jobs_share_one_cost_model_decision_per_instance() {
    let inst = Arc::new(tsp::uniform_random("auto-batch", 32, 500.0, 4));
    let engine = Engine::new(EngineConfig::with_workers(2));
    let reqs: Vec<_> = (0..4)
        .map(|s| {
            SolveRequest::new(Arc::clone(&inst), AcoParams::default().nn(8).ants(8))
                .backend(Backend::Auto)
                .iterations(3)
                .seed(s)
        })
        .collect();
    let reports = engine.run_batch(reqs);
    let backends: Vec<_> = reports.into_iter().map(|r| r.expect("job solves").backend).collect();
    assert!(backends.windows(2).all(|w| w[0] == w[1]), "one decision for all: {backends:?}");
    let stats = engine.cache_stats();
    assert_eq!(stats.decision_misses, 1, "cost models ran once");
    assert_eq!(stats.decision_hits, 3, "three jobs reused the decision");
}
