//! Integration tests for the search-dynamics layer and the event
//! journal: the write-only contract (solve results, placements and
//! progress sequences are bit-identical with dynamics/journal on or off,
//! at any worker count), per-backend statistics sanity, journal
//! export/replay fidelity, stagnation detection, and MMAS restart
//! surfacing.

use std::sync::Arc;

use aco_gpu::core::cpu::{AcsParams, MmasParams, TourPolicy};
use aco_gpu::core::gpu::{PheromoneStrategy, TourStrategy};
use aco_gpu::core::AcoParams;
use aco_gpu::engine::{
    replay_timeline, Backend, DynamicsConfig, Engine, EngineConfig, GpuDevice, IterationEvent,
    JobOutcome, JournalConfig, SolveRequest,
};
use aco_gpu::tsp;

/// One request per backend family, so every colony's dynamics path runs.
fn mixed_batch(inst: &Arc<tsp::TspInstance>, iterations: usize) -> Vec<SolveRequest> {
    let params = AcoParams::default().nn(8).ants(10);
    vec![
        SolveRequest::new(Arc::clone(inst), params.clone())
            .backend(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList })
            .iterations(iterations)
            .seed(1),
        SolveRequest::new(Arc::clone(inst), params.clone())
            .backend(Backend::CpuParallel { policy: TourPolicy::NearestNeighborList, threads: 3 })
            .iterations(iterations)
            .seed(2),
        SolveRequest::new(Arc::clone(inst), params.clone())
            .backend(Backend::CpuAcs(AcsParams::default()))
            .iterations(iterations)
            .seed(3),
        SolveRequest::new(Arc::clone(inst), params.clone())
            .backend(Backend::CpuMmas(MmasParams::default()))
            .iterations(iterations)
            .seed(4),
        SolveRequest::new(Arc::clone(inst), params.clone())
            .backend(Backend::Gpu {
                device: GpuDevice::TeslaC1060,
                tour: TourStrategy::NNList,
                pheromone: PheromoneStrategy::AtomicShared,
            })
            .iterations(iterations)
            .seed(5),
        SolveRequest::new(Arc::clone(inst), params.clone())
            .backend(Backend::GpuAcs { device: GpuDevice::TeslaM2050, acs: AcsParams::default() })
            .iterations(iterations)
            .seed(6),
        SolveRequest::new(Arc::clone(inst), params).backend(Backend::Auto).iterations(3).seed(7),
    ]
}

fn config(workers: usize, dynamics: bool, journal: bool) -> EngineConfig {
    let mut cfg = EngineConfig::with_workers(workers);
    if dynamics {
        cfg = cfg.dynamics(DynamicsConfig::default().window(10));
    }
    if journal {
        cfg = cfg.journal(JournalConfig::default());
    }
    cfg
}

/// Everything a batch reports plus its full progress streams.
type BatchFingerprint = Vec<(u64, Vec<u32>, Option<u32>, u64, Vec<IterationEvent>)>;

fn run_batch(cfg: EngineConfig, inst: &Arc<tsp::TspInstance>) -> BatchFingerprint {
    let engine = Engine::new(cfg);
    let handles: Vec<_> = mixed_batch(inst, 5).into_iter().map(|r| engine.submit(r)).collect();
    handles
        .into_iter()
        .map(|h| {
            let stream = h.progress();
            let report = h.wait().expect("job solves");
            assert_eq!(report.outcome, JobOutcome::Completed);
            (
                report.best_len,
                report.best_tour.order().to_vec(),
                report.device.map(|d| d.0),
                report.restarts,
                stream.collect(),
            )
        })
        .collect()
}

/// A fingerprint with events reduced to `(iteration, iter_best,
/// best_so_far, device)` — the stats-free view.
type MaskedFingerprint = Vec<(u64, Vec<u32>, Option<u32>, u64, Vec<(u64, u64, u64, Option<u32>)>)>;

/// An event stripped of the telemetry-only `stats` field — what must be
/// identical between dynamics-on and dynamics-off runs.
fn mask_stats(batch: &BatchFingerprint) -> MaskedFingerprint {
    batch
        .iter()
        .map(|(best, tour, dev, restarts, events)| {
            (
                *best,
                tour.clone(),
                *dev,
                *restarts,
                events
                    .iter()
                    .map(|e| (e.iteration, e.iter_best, e.best_so_far, e.device))
                    .collect(),
            )
        })
        .collect()
}

/// Acceptance: dynamics and the journal cannot change solve results,
/// placements, or progress sequences — pinned across the on/off setting
/// and 1 vs 4 workers simultaneously. With dynamics on, the *full*
/// events (statistics included) are additionally bit-identical at any
/// worker count.
#[test]
fn results_identical_with_dynamics_and_journal_on_or_off_at_1_and_4_workers() {
    let inst = Arc::new(tsp::uniform_random("dyn-det", 32, 500.0, 13));
    let baseline = run_batch(config(1, true, true), &inst);
    for (workers, dynamics, journal) in
        [(1, false, false), (4, false, false), (1, true, false), (4, true, true)]
    {
        let other = run_batch(config(workers, dynamics, journal), &inst);
        assert_eq!(
            mask_stats(&baseline),
            mask_stats(&other),
            "batch changed at workers={workers} dynamics={dynamics} journal={journal}"
        );
        if dynamics {
            assert_eq!(
                baseline, other,
                "dynamics statistics changed at workers={workers} journal={journal}"
            );
        }
    }
}

/// Every backend family attaches plausible statistics to every event,
/// and the per-job timeline folds them into a dynamics summary.
#[test]
fn every_backend_attaches_sane_statistics() {
    let inst = Arc::new(tsp::uniform_random("dyn-sane", 32, 500.0, 17));
    let n = inst.n() as f64;
    let engine = Engine::new(config(2, true, false));
    let handles: Vec<_> = mixed_batch(&inst, 5).into_iter().map(|r| engine.submit(r)).collect();
    for h in handles {
        let stream = h.progress();
        let report = h.wait().expect("job solves");
        let events: Vec<IterationEvent> = stream.collect();
        assert_eq!(events.len(), report.iterations);
        for ev in &events {
            let s = ev.stats.unwrap_or_else(|| {
                panic!(
                    "dynamics on: event {} of {} has stats",
                    ev.iteration,
                    report.backend.label()
                )
            });
            assert!(
                s.mean_len >= ev.iter_best as f64,
                "{}: mean ant length {} below iteration best {}",
                report.backend.label(),
                s.mean_len,
                ev.iter_best
            );
            assert!(s.stddev_len >= 0.0);
            assert!(
                s.entropy > 0.0 && s.entropy <= 1.0 + 1e-9,
                "{}: entropy {} outside (0, 1]",
                report.backend.label(),
                s.entropy
            );
            assert!(
                s.lambda_branching >= 0.0 && s.lambda_branching <= n - 1.0,
                "{}: lambda branching {} outside [0, n-1]",
                report.backend.label(),
                s.lambda_branching
            );
            assert!(!s.stagnant, "short healthy runs never trip the window-10 detector");
        }
        // Improvements on the stream reconcile with the run's net gain.
        let total: u64 = events.iter().filter_map(|e| e.stats).map(|s| s.improvement).sum();
        assert_eq!(total, events[0].best_so_far - report.best_len);
        let tl = h.timeline().expect("obs on");
        let d = tl.dynamics.as_ref().expect("dynamics summary folded into the timeline");
        assert_eq!(d.iterations, report.iterations as u64);
        assert_eq!(d.final_best, report.best_len);
        assert_eq!(d.total_improvement, total);
    }
}

/// Journal fidelity: the exported JSONL replays into a timeline that
/// matches the live one, and every lifecycle event class appears.
#[test]
fn journal_replay_matches_live_timelines() {
    let inst = Arc::new(tsp::uniform_random("dyn-journal", 32, 500.0, 23));
    let engine = Engine::new(config(2, true, true));
    let handles: Vec<_> = mixed_batch(&inst, 5).into_iter().map(|r| engine.submit(r)).collect();
    for h in &handles {
        h.wait().expect("job solves");
    }
    let text = engine.journal_export().expect("journal configured");
    for ev in
        ["\"ev\":\"submit\"", "\"ev\":\"placement\"", "\"ev\":\"iteration\"", "\"ev\":\"complete\""]
    {
        assert!(text.contains(ev), "journal records {ev}");
    }
    for h in &handles {
        let live = h.timeline().expect("obs on");
        let replayed = replay_timeline(&text, h.id().as_u64())
            .unwrap_or_else(|| panic!("job {} replays", h.id().as_u64()));
        assert_eq!(replayed.job, live.job);
        assert_eq!(replayed.backend, live.backend);
        assert_eq!(replayed.device, live.device);
        assert_eq!(replayed.artifact_cache_hit, live.artifact_cache_hit);
        assert!((replayed.queue_wait_ms - live.queue_wait_ms).abs() < 0.01);
        assert!((replayed.solve_wall_ms - live.solve_wall_ms).abs() < 0.01);
        let (rd, ld) = (
            replayed.dynamics.as_ref().expect("replayed dynamics"),
            live.dynamics.as_ref().expect("live dynamics"),
        );
        assert_eq!(rd.iterations, ld.iterations);
        assert_eq!(rd.final_best, ld.final_best);
        assert_eq!(rd.total_improvement, ld.total_improvement);
        assert!((rd.final_entropy - ld.final_entropy).abs() < 1e-5);
    }
    assert!(replay_timeline(&text, 9999).is_none(), "unknown jobs do not replay");
}

/// Iteration sampling bounds journal growth without touching the other
/// event classes.
#[test]
fn journal_sampling_keeps_lifecycle_events() {
    let inst = Arc::new(tsp::uniform_random("dyn-sample", 28, 400.0, 29));
    let engine = Engine::new(
        EngineConfig::with_workers(1)
            .dynamics(DynamicsConfig::default())
            .journal(JournalConfig::default().sample_every(4)),
    );
    let h = engine.submit(
        SolveRequest::new(Arc::clone(&inst), AcoParams::default().nn(8).ants(8))
            .backend(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList })
            .iterations(8)
            .seed(1),
    );
    h.wait().expect("job solves");
    let text = engine.journal_export().expect("journal configured");
    let iters = text.lines().filter(|l| l.contains("\"ev\":\"iteration\"")).count();
    assert_eq!(iters, 2, "iterations 0 and 4 of 8 survive a stride of 4");
    assert_eq!(text.lines().filter(|l| l.contains("\"ev\":\"submit\"")).count(), 1);
    assert_eq!(text.lines().filter(|l| l.contains("\"ev\":\"complete\"")).count(), 1);
}

/// A tight no-improvement window trips the stagnation detector: the
/// engine counter moves, the journal records the onset, and the per-job
/// gauges appear in the metrics export.
#[test]
fn stagnation_detector_fires_and_is_exported() {
    let inst = Arc::new(tsp::uniform_random("dyn-stag", 24, 400.0, 31));
    let engine = Engine::new(
        EngineConfig::with_workers(1)
            .dynamics(DynamicsConfig::default().window(2))
            .journal(JournalConfig::default()),
    );
    let h = engine.submit(
        SolveRequest::new(Arc::clone(&inst), AcoParams::default().nn(8).ants(8))
            .backend(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList })
            .iterations(40)
            .seed(2),
    );
    let report = h.wait().expect("job solves");
    let tl = h.timeline().expect("obs on");
    let d = tl.dynamics.as_ref().expect("dynamics tracked");
    assert!(
        d.stagnation_events >= 1,
        "40 iterations on a tiny instance must stall a window-2 detector"
    );
    let snap = engine.metrics();
    let counter = |name: &str| snap.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
    let stagnations = counter("aco_engine_stagnation_events_total").expect("counter registered");
    assert_eq!(stagnations, d.stagnation_events, "engine counter matches the summary");
    let text = engine.journal_export().expect("journal configured");
    assert_eq!(
        text.lines().filter(|l| l.contains("\"ev\":\"stagnation\"")).count() as u64,
        d.stagnation_events,
        "one journal line per onset"
    );
    // Per-job dynamics gauges are bridged into the snapshot.
    let gauge = |name: &str| snap.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
    let job = h.id().as_u64();
    let entropy = gauge(&format!("aco_job_entropy_milli{{job=\"{job}\"}}")).expect("entropy gauge");
    assert_eq!(entropy, (d.final_entropy * 1e3).round() as i64);
    assert!(gauge(&format!("aco_job_stagnant_iterations{{job=\"{job}\"}}")).is_some());
    assert_eq!(report.restarts, 0, "plain AS never restarts");
}

/// MMAS stagnation restarts surface on the report and the engine-wide
/// counter — and stay deterministic across worker counts.
#[test]
fn mmas_restarts_surface_on_report_and_metrics() {
    let inst = Arc::new(tsp::uniform_random("dyn-restart", 24, 400.0, 37));
    let run = |workers: usize| {
        let engine = Engine::new(EngineConfig::with_workers(workers));
        let h = engine.submit(
            SolveRequest::new(Arc::clone(&inst), AcoParams::default().nn(8).ants(8))
                .backend(Backend::CpuMmas(MmasParams { gb_every: 0, restart_after: 3 }))
                .iterations(30)
                .seed(3),
        );
        let report = h.wait().expect("job solves");
        let snap = engine.metrics();
        let counted = snap
            .counters
            .iter()
            .find(|(n, _)| n == "aco_engine_restarts_total")
            .map(|(_, v)| *v)
            .expect("restart counter registered");
        assert_eq!(counted, report.restarts, "metrics bridge the report count");
        report
    };
    let r1 = run(1);
    assert!(r1.restarts >= 1, "restart_after=3 over 30 iterations must fire");
    assert_eq!(r1.restarts, run(4).restarts, "restarts deterministic in the seed");
}
