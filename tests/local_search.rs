//! Integration tests for the `aco-localsearch` subsystem: strategy
//! properties, GPU-kernel ↔ CPU equivalence through the colony path,
//! engine determinism with local search enabled, and the improvement
//! telemetry — the acceptance criteria of the local-search PR.

use std::sync::Arc;

use aco_gpu::core::cpu::{AcsParams, MmasParams, TourPolicy};
use aco_gpu::core::gpu::{GpuAntSystem, PheromoneStrategy, TourStrategy};
use aco_gpu::core::AcoParams;
use aco_gpu::engine::{
    Backend, Engine, EngineConfig, GpuDevice, IterationEvent, LocalSearch, LsScope, SolveRequest,
};
use aco_gpu::localsearch::LsScratch;
use aco_gpu::simt::DeviceSpec;
use aco_gpu::tsp;
use proptest::prelude::*;

fn ls_batch(inst: &Arc<tsp::TspInstance>, ls: LocalSearch, scope: LsScope) -> Vec<SolveRequest> {
    let params = AcoParams::default().nn(10).ants(8);
    let req = |backend: Backend, seed: u64, iters: usize| {
        SolveRequest::new(Arc::clone(inst), params.clone())
            .backend(backend)
            .iterations(iters)
            .seed(seed)
            .local_search(ls)
            .local_search_scope(scope)
    };
    vec![
        req(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList }, 1, 4),
        req(Backend::CpuParallel { policy: TourPolicy::NearestNeighborList, threads: 3 }, 2, 4),
        req(Backend::CpuAcs(AcsParams::default()), 3, 3),
        req(Backend::CpuMmas(MmasParams::default()), 4, 3),
        req(
            Backend::Gpu {
                device: GpuDevice::TeslaC1060,
                tour: TourStrategy::NNList,
                pheromone: PheromoneStrategy::AtomicShared,
            },
            5,
            3,
        ),
        req(Backend::GpuAcs { device: GpuDevice::TeslaM2050, acs: AcsParams::default() }, 6, 3),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Acceptance: every variant never worsens a tour and preserves the
    /// permutation property, on arbitrary instances and start tours.
    #[test]
    fn every_variant_never_worsens_and_preserves_validity(
        n in 6usize..64,
        inst_seed in 0u64..100_000,
        tour_seed in 0u64..100_000,
        depth in 2usize..16,
    ) {
        use rand::SeedableRng;
        let inst = tsp::uniform_random("ls-prop", n, 1000.0, inst_seed);
        let nn = tsp::NearestNeighborLists::build(inst.matrix(), depth.min(n - 1)).unwrap();
        let mut scratch = LsScratch::new();
        for ls in LocalSearch::ALL {
            let mut rng = rand::rngs::StdRng::seed_from_u64(tour_seed);
            let mut tour = tsp::Tour::random(n, &mut rng);
            let before = tour.length(inst.matrix());
            let gain = ls.improve(&mut tour, inst.matrix(), &nn, &mut scratch);
            prop_assert!(tour.is_valid(), "{ls}: invalid permutation");
            let after = tour.length(inst.matrix());
            prop_assert!(after <= before, "{ls}: worsened {before} -> {after}");
            prop_assert_eq!(after, before - gain, "{}: inexact gain", ls);
        }
    }
}

/// Acceptance: the GPU colony's 2-opt kernel family produces *exactly*
/// the tours the CPU `TwoOptNn` pass produces — pinned end to end by
/// running the colony and replaying its pre-LS tours through the host
/// pass.
#[test]
fn gpu_colony_two_opt_kernel_matches_host_pass_exactly() {
    let inst = tsp::uniform_random("ls-gpu-eq", 52, 900.0, 17);
    let params = AcoParams::default().nn(12).seed(9);
    // Reference colony without local search: its iteration-best tour is
    // the kernel family's input.
    let mut plain = GpuAntSystem::new(
        &inst,
        params.clone(),
        DeviceSpec::tesla_m2050(),
        TourStrategy::NNList,
        PheromoneStrategy::AtomicShared,
    );
    let first = plain.iterate(aco_gpu::simt::SimMode::Full).unwrap();
    // LS colony with identical seed: same construction, then the device
    // kernel family.
    let mut ls_colony = GpuAntSystem::new(
        &inst,
        params,
        DeviceSpec::tesla_m2050(),
        TourStrategy::NNList,
        PheromoneStrategy::AtomicShared,
    );
    ls_colony.set_local_search(LocalSearch::TwoOptNn, LsScope::IterationBest);
    let rep = ls_colony.iterate(aco_gpu::simt::SimMode::Full).unwrap();
    assert!(rep.ls_ms > 0.0, "the kernel family must cost modeled time");

    // Host replay: the plain colony's iteration-best tour through the
    // CPU pass must land exactly on the LS colony's iteration-best.
    let nn = tsp::NearestNeighborLists::build(inst.matrix(), 12).unwrap();
    let (plain_best, plain_len) = plain.best().expect("ran");
    let mut host = plain_best.clone();
    let mut scratch = LsScratch::new();
    aco_gpu::localsearch::cpu::two_opt_nn(&mut host, inst.matrix(), &nn, &mut scratch);
    let host_len = host.length(inst.matrix());
    let (gpu_tour, gpu_len) = ls_colony.best().expect("ran");
    assert_eq!(gpu_tour.order(), host.order(), "device 2-opt must equal the host pass");
    assert_eq!(gpu_len, host_len);
    assert!(gpu_len <= plain_len);
    assert_eq!(
        ls_colony.local_search_improvement(),
        plain_len - gpu_len,
        "improvement telemetry is the exact delta"
    );
    assert_eq!(first.iter_best, plain_len, "sanity: same construction in both colonies");
}

/// The kernel family's results, counters and modeled times do not depend
/// on the colony's exec-thread budget.
#[test]
fn gpu_colony_local_search_is_exec_thread_invariant() {
    let inst = tsp::uniform_random("ls-thr", 40, 800.0, 23);
    let run = |threads: usize| {
        let mut sys = GpuAntSystem::new(
            &inst,
            AcoParams::default().nn(10).seed(4),
            DeviceSpec::tesla_c1060(),
            TourStrategy::NNList,
            PheromoneStrategy::AtomicShared,
        );
        sys.set_exec_threads(threads);
        sys.set_local_search(LocalSearch::TwoOptNn, LsScope::IterationBest);
        let mut ls_ms = 0.0;
        for _ in 0..3 {
            ls_ms += sys.iterate(aco_gpu::simt::SimMode::Full).unwrap().ls_ms;
        }
        let (tour, len) = sys.best().expect("ran");
        (tour.clone(), len, sys.local_search_improvement(), ls_ms)
    };
    let (t1, l1, imp1, ms1) = run(1);
    for threads in [2, 4] {
        let (t, l, imp, ms) = run(threads);
        assert_eq!(t1.order(), t.order(), "{threads} exec threads: tours");
        assert_eq!(l1, l, "{threads} exec threads: lengths");
        assert_eq!(imp1, imp, "{threads} exec threads: improvement");
        assert_eq!(ms1.to_bits(), ms.to_bits(), "{threads} exec threads: modeled ms");
    }
}

/// Acceptance (batched launches): with `LsScope::AllAnts`, the 2-opt
/// pass runs the `two_opt_*_all` kernels — `O(rounds)` launches per
/// iteration, **independent of the colony size** — instead of looping
/// the per-ant family `m` times. Pinned through the obs kernel
/// profiler: per round the driver launches pos + propose + select, plus
/// one apply for every round that found an improving ant, so total
/// batched launches are exactly `4·rounds − 1` whatever `m` is.
#[test]
fn all_ants_two_opt_launches_scale_with_rounds_not_colony_size() {
    let inst = tsp::uniform_random("ls-batch", 44, 850.0, 13);
    let batched_launches = |ants: usize| {
        let mut sys = GpuAntSystem::new(
            &inst,
            AcoParams::default().nn(10).ants(ants).seed(6),
            DeviceSpec::tesla_m2050(),
            TourStrategy::NNList,
            PheromoneStrategy::AtomicShared,
        );
        sys.set_local_search(LocalSearch::TwoOptNn, LsScope::AllAnts);
        let profiler = Arc::new(aco_gpu::obs::KernelProfiler::new());
        let sink = aco_gpu::obs::KernelSink { trace: None, profiler: Some(Arc::clone(&profiler)) };
        let scope = aco_gpu::obs::install(sink);
        sys.iterate(aco_gpu::simt::SimMode::Full).unwrap();
        drop(scope);
        let mut by_family = std::collections::BTreeMap::new();
        for snap in profiler.snapshot() {
            by_family.insert(snap.family, snap.invocations);
        }
        by_family
    };
    for ants in [4usize, 12] {
        let fam = batched_launches(ants);
        let rounds = fam.get("two_opt_pos_all").copied().unwrap_or(0);
        assert!(rounds > 0, "m={ants}: the batched family must run");
        assert_eq!(fam.get("two_opt_propose_all"), Some(&rounds), "m={ants}");
        assert_eq!(fam.get("two_opt_select_all"), Some(&rounds), "m={ants}");
        assert_eq!(fam.get("two_opt_apply_all"), Some(&(rounds - 1)), "m={ants}");
        // The whole pass is O(rounds) launches — and never falls back to
        // the per-ant family (which would cost O(m · rounds)).
        for per_ant in ["two_opt_pos", "two_opt_propose", "two_opt_select", "two_opt_apply"] {
            assert!(
                !fam.contains_key(per_ant),
                "m={ants}: all-ants pass must not launch the per-ant `{per_ant}` kernel"
            );
        }
        let batched: u64 = fam
            .iter()
            .filter(|(family, _)| family.starts_with("two_opt") && family.ends_with("_all"))
            .map(|(_, &inv)| inv)
            .sum();
        assert_eq!(batched, 4 * rounds - 1, "m={ants}: launches are O(rounds), not O(m·rounds)");
    }
}

/// Acceptance: the GPU colony's `or_opt` kernel family produces
/// *exactly* the tours the CPU `OrOpt` pass produces — pinned end to
/// end like the 2-opt equivalence test above.
#[test]
fn gpu_colony_or_opt_kernel_matches_host_pass_exactly() {
    let inst = tsp::uniform_random("ls-oropt-eq", 58, 950.0, 29);
    let params = AcoParams::default().nn(12).seed(11);
    let mut plain = GpuAntSystem::new(
        &inst,
        params.clone(),
        DeviceSpec::tesla_m2050(),
        TourStrategy::NNList,
        PheromoneStrategy::AtomicShared,
    );
    plain.iterate(aco_gpu::simt::SimMode::Full).unwrap();
    let mut ls_colony = GpuAntSystem::new(
        &inst,
        params,
        DeviceSpec::tesla_m2050(),
        TourStrategy::NNList,
        PheromoneStrategy::AtomicShared,
    );
    ls_colony.set_local_search(LocalSearch::OrOpt, LsScope::IterationBest);
    let rep = ls_colony.iterate(aco_gpu::simt::SimMode::Full).unwrap();
    assert!(rep.ls_ms > 0.0, "the or_opt family must cost modeled time");

    let nn = tsp::NearestNeighborLists::build(inst.matrix(), 12).unwrap();
    let (plain_best, plain_len) = plain.best().expect("ran");
    let mut host = plain_best.clone();
    let mut scratch = LsScratch::new();
    aco_gpu::localsearch::cpu::or_opt(&mut host, inst.matrix(), &nn, &mut scratch);
    let host_len = host.length(inst.matrix());
    let (gpu_tour, gpu_len) = ls_colony.best().expect("ran");
    assert_eq!(gpu_tour.order(), host.order(), "device or_opt must equal the host pass");
    assert_eq!(gpu_len, host_len);
    assert!(gpu_len <= plain_len);
    assert_eq!(ls_colony.local_search_improvement(), plain_len - gpu_len);
}

/// The `or_opt` family (windowed over the whole colony) is invariant to
/// the exec-thread budget, like every other kernel family.
#[test]
fn gpu_colony_or_opt_is_exec_thread_invariant() {
    let inst = tsp::uniform_random("ls-oropt-thr", 42, 800.0, 19);
    let run = |threads: usize| {
        let mut sys = GpuAntSystem::new(
            &inst,
            AcoParams::default().nn(10).ants(6).seed(5),
            DeviceSpec::tesla_c1060(),
            TourStrategy::NNList,
            PheromoneStrategy::AtomicShared,
        );
        sys.set_exec_threads(threads);
        sys.set_local_search(LocalSearch::OrOpt, LsScope::AllAnts);
        let mut ls_ms = 0.0;
        for _ in 0..3 {
            ls_ms += sys.iterate(aco_gpu::simt::SimMode::Full).unwrap().ls_ms;
        }
        let (tour, len) = sys.best().expect("ran");
        (tour.clone(), len, sys.local_search_improvement(), ls_ms)
    };
    let (t1, l1, imp1, ms1) = run(1);
    for threads in [2, 4] {
        let (t, l, imp, ms) = run(threads);
        assert_eq!(t1.order(), t.order(), "{threads} exec threads: tours");
        assert_eq!(l1, l, "{threads} exec threads: lengths");
        assert_eq!(imp1, imp, "{threads} exec threads: improvement");
        assert_eq!(ms1.to_bits(), ms.to_bits(), "{threads} exec threads: modeled ms");
    }
}

/// Idle-worker thread donation widens exec-thread budgets but — because
/// simulator results are bit-identical at any thread count — must never
/// change a report, placement or progress stream. Donation on vs off,
/// same batch, same worker count: identical results.
#[test]
fn thread_donation_never_changes_results() {
    let inst = Arc::new(tsp::uniform_random("ls-donate", 38, 750.0, 41));
    let run = |donate: bool| {
        let engine = Engine::new(EngineConfig::with_workers(4).donate_idle(donate));
        let handles: Vec<_> = ls_batch(&inst, LocalSearch::TwoOptNn, LsScope::AllAnts)
            .into_iter()
            .map(|r| engine.submit(r))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let events: Vec<IterationEvent> = h.progress().collect();
                (h.wait().expect("job solves"), events)
            })
            .collect::<Vec<_>>()
    };
    let donated = run(true);
    let plain = run(false);
    assert_eq!(donated, plain, "donation must change wall-clock only");
}

/// Acceptance: LS-enabled batches stay bit-identical at 1 vs 4 workers —
/// reports *and* progress event sequences — across every backend family
/// and both scopes.
#[test]
fn ls_enabled_solves_are_bit_identical_across_worker_counts() {
    let inst = Arc::new(tsp::uniform_random("ls-det", 36, 700.0, 31));
    for (ls, scope) in [
        (LocalSearch::TwoOptNn, LsScope::IterationBest),
        (LocalSearch::TwoOpt, LsScope::IterationBest),
        (LocalSearch::OrOpt, LsScope::AllAnts),
        (LocalSearch::PostPass, LsScope::IterationBest),
    ] {
        let run = |workers: usize| {
            let engine = Engine::new(EngineConfig::with_workers(workers));
            let handles: Vec<_> =
                ls_batch(&inst, ls, scope).into_iter().map(|r| engine.submit(r)).collect();
            handles
                .into_iter()
                .map(|h| {
                    let events: Vec<IterationEvent> = h.progress().collect();
                    (h.wait().expect("job solves"), events)
                })
                .collect::<Vec<_>>()
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial, parallel, "{ls}/{scope:?}: worker count changed results");
        for (rep, events) in &serial {
            assert!(rep.best_tour.is_valid());
            assert_eq!(rep.best_len, rep.best_tour.length(inst.matrix()));
            assert!(!events.is_empty());
        }
    }
}

/// The per-iteration strategies visibly improve solution quality on a
/// construction-only baseline, and the telemetry records it.
#[test]
fn per_iteration_local_search_improves_quality() {
    let inst = Arc::new(tsp::uniform_random("ls-qual", 72, 1000.0, 8));
    let engine = Engine::new(EngineConfig::with_workers(2));
    let req = |ls: LocalSearch| {
        SolveRequest::new(Arc::clone(&inst), AcoParams::default().nn(12).ants(12))
            .backend(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList })
            .iterations(5)
            .seed(2)
            .local_search(ls)
    };
    let plain = engine.submit(req(LocalSearch::None)).wait().expect("plain solves");
    let polished = engine.submit(req(LocalSearch::TwoOptNn)).wait().expect("ls solves");
    assert!(
        polished.best_len <= plain.best_len,
        "2-opt-in-the-loop must not lose to construction alone here ({} vs {})",
        polished.best_len,
        plain.best_len
    );
    assert!(polished.local_search_improvement > 0, "iterated LS must find improvements");
    // And the GPU colony's modeled time must include the LS kernels.
    let gpu = |ls: LocalSearch| {
        engine
            .submit(
                SolveRequest::new(Arc::clone(&inst), AcoParams::default().nn(12).ants(12))
                    .backend(Backend::Gpu {
                        device: GpuDevice::TeslaM2050,
                        tour: TourStrategy::NNList,
                        pheromone: PheromoneStrategy::AtomicShared,
                    })
                    .iterations(3)
                    .seed(2)
                    .local_search(ls),
            )
            .wait()
            .expect("gpu job solves")
    };
    let gpu_plain = gpu(LocalSearch::None);
    let gpu_ls = gpu(LocalSearch::TwoOptNn);
    assert!(gpu_ls.local_search_improvement > 0);
    assert!(
        gpu_ls.modeled_ms > gpu_plain.modeled_ms,
        "the 2-opt kernel family must be priced into the report clock"
    );
}

/// Jobs that differ only in local search must not share an `auto`
/// decision (the strategy is priced into candidate selection).
#[test]
fn auto_decisions_are_keyed_on_local_search() {
    let inst = Arc::new(tsp::uniform_random("ls-auto", 40, 600.0, 5));
    let engine = Engine::new(EngineConfig::with_workers(1));
    let req = |ls: LocalSearch, seed: u64| {
        SolveRequest::new(Arc::clone(&inst), AcoParams::default().nn(8).ants(8))
            .backend(Backend::Auto)
            .iterations(2)
            .seed(seed)
            .local_search(ls)
    };
    engine.submit(req(LocalSearch::None, 1)).wait().expect("solves");
    engine.submit(req(LocalSearch::TwoOptNn, 2)).wait().expect("solves");
    engine.submit(req(LocalSearch::TwoOptNn, 3)).wait().expect("solves");
    let stats = engine.cache_stats();
    assert_eq!(stats.decision_misses, 2, "None vs TwoOptNn are distinct decisions");
    assert_eq!(stats.decision_hits, 1, "same-strategy jobs share one decision");
}

/// Release-mode CI case: `TwoOptNn` on a larger generated instance, both
/// as a bare pass and through an engine solve. `#[ignore]`d in debug
/// tier-1 (minutes there, seconds in release).
#[test]
#[ignore = "release-mode CI case (localsearch-release job); slow in debug"]
fn two_opt_nn_scales_to_larger_instances() {
    use rand::SeedableRng;
    let n = 400;
    let inst = tsp::uniform_random("ls-large", n, 2000.0, 77);
    let nn = tsp::NearestNeighborLists::build(inst.matrix(), 20).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut tour = tsp::Tour::random(n, &mut rng);
    let before = tour.length(inst.matrix());
    let mut scratch = LsScratch::new();
    let gain = LocalSearch::TwoOptNn.improve(&mut tour, inst.matrix(), &nn, &mut scratch);
    assert!(tour.is_valid());
    assert!(gain > 0);
    let after = tour.length(inst.matrix());
    assert_eq!(after, before - gain);
    assert!(
        (after as f64) < 0.55 * before as f64,
        "2-opt should cut a random {n}-city tour roughly in half ({before} -> {after})"
    );

    // End-to-end: an engine job on the same instance with per-iteration
    // LS on the iteration best, bit-identical across worker counts.
    let inst = Arc::new(inst);
    let req = || {
        SolveRequest::new(Arc::clone(&inst), AcoParams::default().nn(20).ants(16))
            .backend(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList })
            .iterations(4)
            .seed(3)
            .local_search(LocalSearch::TwoOptNn)
    };
    let a = Engine::new(EngineConfig::with_workers(1)).submit(req()).wait().expect("solves");
    let b = Engine::new(EngineConfig::with_workers(4)).submit(req()).wait().expect("solves");
    assert_eq!(a, b);
    assert!(a.local_search_improvement > 0);
}
