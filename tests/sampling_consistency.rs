//! Validation of block-sampled timing extrapolation.
//!
//! The repro harness times pr1002/pr2392 launches by executing a
//! deterministic subset of blocks and scaling the counters (the paper's
//! kernels are block-homogeneous). These tests pin the technique: on
//! instances small enough to simulate fully, sampled estimates must agree
//! with full execution.
//!
//! The exhaustive cases simulate 160–256-city colonies at full fidelity —
//! tens of minutes in a debug build — so they are `#[ignore]`d out of
//! tier-1 and executed by the dedicated release-mode CI job
//! (`cargo test --release --test sampling_consistency -- --ignored`).
//! A fast smoke case keeps the technique pinned in every tier-1 run.

use aco_gpu::core::gpu::{run_pheromone, run_tour, ColonyBuffers, PheromoneStrategy, TourStrategy};
use aco_gpu::core::AcoParams;
use aco_gpu::simt::rng::PmRng;
use aco_gpu::simt::{DeviceSpec, GlobalMem, SimMode};
use aco_gpu::tsp::{self, Tour};

fn rel(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(1e-12)
}

fn host_tours(n: usize) -> Vec<Tour> {
    (0..n)
        .map(|a| {
            let mut pm = PmRng::new(PmRng::thread_seed(5, a as u64));
            let mut order: Vec<u32> = (0..n as u32).collect();
            for i in (1..n).rev() {
                let j = (pm.next_f64() * (i + 1) as f64) as usize;
                order.swap(i, j);
            }
            Tour::new_unchecked(order)
        })
        .collect()
}

/// Tier-1 smoke: one tour strategy and one pheromone strategy on a small
/// colony — seconds in debug, same invariant as the exhaustive cases.
#[test]
fn sampled_times_match_full_execution_smoke() {
    let inst = tsp::uniform_random("samp-smoke", 96, 800.0, 5);
    let params = AcoParams::default().nn(12).ants(128).seed(3);
    let dev = DeviceSpec::tesla_c1060();

    let tour_time_of = |mode: SimMode| {
        let mut gm = GlobalMem::new();
        let bufs = ColonyBuffers::allocate(&mut gm, &inst, &params);
        run_tour(&dev, &mut gm, bufs, TourStrategy::NNList, 1.0, 2.0, 7, 0, mode)
            .expect("valid launch")
            .total_ms()
    };
    let full = tour_time_of(SimMode::Full);
    let sampled = tour_time_of(SimMode::SampleBlocks(2));
    assert!(rel(sampled, full) < 0.30, "tour: sampled {sampled:.3} vs full {full:.3}");

    // Pheromone smoke: default colony size (m = n) so one host tour per
    // ant uploads.
    let params = AcoParams::default().nn(12).seed(3);
    let tours = host_tours(96);
    let ph_time_of = |mode: SimMode| {
        let mut gm = GlobalMem::new();
        let bufs = ColonyBuffers::allocate(&mut gm, &inst, &params);
        bufs.upload_tours(&mut gm, &tours, inst.matrix());
        run_pheromone(&dev, &mut gm, bufs, PheromoneStrategy::AtomicShared, 0.5, mode)
            .expect("valid launch")
            .time
            .total_ms
    };
    let full_ph = ph_time_of(SimMode::Full);
    let sampled_ph = ph_time_of(SimMode::SampleBlocks(2));
    assert!(
        rel(sampled_ph, full_ph) < 0.30,
        "pheromone: sampled {sampled_ph:.3} vs full {full_ph:.3}"
    );
}

#[test]
#[ignore = "heavy (tens of minutes in debug): covered by the release-mode CI job"]
fn sampled_tour_times_match_full_execution() {
    // 512 ants = 4 task blocks / 512 DP blocks: enough blocks to sample.
    let inst = tsp::uniform_random("samp", 256, 1000.0, 3);
    let params = AcoParams::default().nn(20).ants(512).seed(2);
    let dev = DeviceSpec::tesla_c1060();

    for strategy in [TourStrategy::NNList, TourStrategy::DataParallelTex] {
        let time_of = |mode: SimMode| {
            let mut gm = GlobalMem::new();
            let bufs = ColonyBuffers::allocate(&mut gm, &inst, &params);
            run_tour(&dev, &mut gm, bufs, strategy, 1.0, 2.0, 7, 0, mode)
                .expect("valid launch")
                .total_ms()
        };
        let full = time_of(SimMode::Full);
        let sampled = time_of(SimMode::SampleBlocks(2));
        assert!(rel(sampled, full) < 0.25, "{strategy:?}: sampled {sampled:.3} vs full {full:.3}");
    }
}

#[test]
#[ignore = "heavy (tens of minutes in debug): covered by the release-mode CI job"]
fn sampled_pheromone_times_match_full_execution() {
    let inst = tsp::uniform_random("samp2", 160, 900.0, 4);
    let params = AcoParams::default().nn(20).seed(6);
    let dev = DeviceSpec::tesla_m2050();
    let tours = host_tours(160);

    for strategy in [
        PheromoneStrategy::AtomicShared,
        PheromoneStrategy::Scatter,
        PheromoneStrategy::ScatterTiled,
        PheromoneStrategy::Reduction,
    ] {
        let time_of = |mode: SimMode| {
            let mut gm = GlobalMem::new();
            let bufs = ColonyBuffers::allocate(&mut gm, &inst, &params);
            bufs.upload_tours(&mut gm, &tours, inst.matrix());
            run_pheromone(&dev, &mut gm, bufs, strategy, 0.5, mode)
                .expect("valid launch")
                .time
                .total_ms
        };
        let full = time_of(SimMode::Full);
        let sampled = time_of(SimMode::SampleBlocks(3));
        assert!(rel(sampled, full) < 0.20, "{strategy:?}: sampled {sampled:.3} vs full {full:.3}");
    }
}

#[test]
#[ignore = "heavy (tens of minutes in debug): covered by the release-mode CI job"]
fn sampling_preserves_counter_totals() {
    // Not just time: the extrapolated DRAM traffic and instruction counts
    // must track the full run for a homogeneous kernel.
    let inst = tsp::uniform_random("samp3", 128, 800.0, 9);
    let params = AcoParams::default().nn(16).ants(512).seed(1);
    let dev = DeviceSpec::tesla_c1060();

    let stats_of = |mode: SimMode| {
        let mut gm = GlobalMem::new();
        let bufs = ColonyBuffers::allocate(&mut gm, &inst, &params);
        run_tour(&dev, &mut gm, bufs, TourStrategy::NNList, 1.0, 2.0, 3, 0, mode)
            .expect("valid launch")
            .stats
    };
    let full = stats_of(SimMode::Full);
    let sampled = stats_of(SimMode::SampleBlocks(2));
    assert!(rel(sampled.dram_bytes, full.dram_bytes) < 0.25);
    assert!(rel(sampled.warp_instructions, full.warp_instructions) < 0.25);
    assert!(rel(sampled.rng_calls, full.rng_calls) < 0.25);
}
