//! The paper's headline claims, checked end-to-end through the bench
//! harness at small scale (att48 + kroC100, full-fidelity simulation).

use aco_bench::{table2, table3, table4, ModePolicy, RunConfig};
use aco_simt::DeviceSpec;

fn cfg() -> RunConfig {
    RunConfig { max_n: 100, mode: ModePolicy::Full, threads: 4 }
}

#[test]
fn table2_every_successive_optimisation_wins_on_small_instances() {
    let t = table2(&DeviceSpec::tesla_c1060(), &cfg());
    for c in 0..t.cols.len() {
        // Rows 1..4 are strictly improving in the paper on every instance.
        for r in 1..4 {
            assert!(
                t.values[r][c] < t.values[r - 1][c],
                "row {} must beat row {} on {} ({} vs {})",
                r + 1,
                r,
                t.cols[c],
                t.values[r][c],
                t.values[r - 1][c]
            );
        }
        // The paper's headline: data parallelism is the best strategy on
        // small instances (Table II: 0.34 vs 1.35 on att48).
        assert!(t.values[7][c] < t.values[5][c], "DP must win on {}", t.cols[c]);
    }
}

#[test]
fn table2_total_speedup_is_an_order_of_magnitude() {
    let t = table2(&DeviceSpec::tesla_c1060(), &cfg());
    let last = t.rows.len() - 1;
    assert!(t.rows[last].contains("speed-up"));
    for c in 0..t.cols.len() {
        assert!(
            t.values[last][c] > 10.0,
            "total v1->v8 speed-up on {} should exceed 10x (paper: 38-63x), got {:.1}",
            t.cols[c],
            t.values[last][c]
        );
    }
}

#[test]
fn tables34_atomics_beat_every_scatter_variant() {
    for t in [table3(&cfg()), table4(&cfg())] {
        for c in 0..t.cols.len() {
            for r in 2..5 {
                assert!(
                    t.values[0][c] < t.values[r][c],
                    "{}: atomic+shared must beat row {} on {}",
                    t.title,
                    r + 1,
                    t.cols[c]
                );
            }
            // Tiling recovers bandwidth; reduction recovers more.
            assert!(t.values[3][c] < t.values[4][c], "{}: tiling helps on {}", t.title, t.cols[c]);
            assert!(
                t.values[2][c] < t.values[3][c],
                "{}: thread reduction helps on {}",
                t.title,
                t.cols[c]
            );
        }
    }
}

#[test]
fn fermi_atomics_are_several_times_faster_than_gt200_emulation() {
    let t3 = table3(&cfg());
    let t4 = table4(&cfg());
    for c in 0..t3.cols.len() {
        let ratio = t3.values[0][c] / t4.values[0][c];
        assert!(
            ratio > 2.0,
            "atomic+shared on {} should be much faster on the M2050 (got {ratio:.2}x)",
            t3.cols[c]
        );
    }
}

#[test]
#[allow(clippy::needless_range_loop)] // (row, col) indexing into parallel tables
fn measured_cells_track_paper_cells_in_order_of_magnitude() {
    // Absolute times cannot match hardware we do not have, but every
    // measured cell must land within a factor of 8 of the paper's cell
    // for the small instances (where simulation is exact).
    let t = table2(&DeviceSpec::tesla_c1060(), &cfg());
    let paper = t.paper.as_ref().expect("table2 embeds paper values");
    for r in 0..8 {
        for c in 0..t.cols.len() {
            let ratio = t.values[r][c] / paper[r][c];
            assert!(
                (1.0 / 8.0..=8.0).contains(&ratio),
                "{} on {}: measured {:.2} vs paper {:.2} (x{ratio:.2})",
                t.rows[r],
                t.cols[c],
                t.values[r][c],
                paper[r][c]
            );
        }
    }
}
