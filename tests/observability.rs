//! Integration tests for the observability subsystem: the determinism
//! contract (metrics/traces are write-only — solve results, placements
//! and progress sequences are bit-identical with observability on or
//! off, at any worker count), the pinned histogram bucket boundaries,
//! per-job timeline structure, and the engine metrics export surface.
//!
//! Latency assertions here are **structural** (presence, monotonicity,
//! conservation), never wall-clock thresholds — the CI container has one
//! core and arbitrary scheduling jitter.

use std::sync::Arc;

use aco_gpu::core::cpu::{AcsParams, MmasParams, TourPolicy};
use aco_gpu::core::gpu::{PheromoneStrategy, TourStrategy};
use aco_gpu::core::AcoParams;
use aco_gpu::engine::{
    Backend, Engine, EngineConfig, GpuDevice, IterationEvent, JobOutcome, LocalSearch,
    SolveRequest, LATENCY_BUCKETS_MS,
};
use aco_gpu::tsp;

/// A mixed batch exercising every backend family, with and without
/// local search / post-pass, so every span-recording path runs.
fn mixed_batch(inst: &Arc<tsp::TspInstance>) -> Vec<SolveRequest> {
    let params = AcoParams::default().nn(8).ants(10);
    vec![
        SolveRequest::new(Arc::clone(inst), params.clone())
            .backend(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList })
            .iterations(5)
            .seed(1),
        SolveRequest::new(Arc::clone(inst), params.clone())
            .backend(Backend::CpuParallel { policy: TourPolicy::NearestNeighborList, threads: 3 })
            .iterations(5)
            .seed(2)
            .local_search(LocalSearch::PostPass),
        SolveRequest::new(Arc::clone(inst), params.clone())
            .backend(Backend::CpuAcs(AcsParams::default()))
            .iterations(4)
            .seed(3),
        SolveRequest::new(Arc::clone(inst), params.clone())
            .backend(Backend::CpuMmas(MmasParams::default()))
            .iterations(4)
            .seed(4)
            .local_search(LocalSearch::TwoOptNn),
        SolveRequest::new(Arc::clone(inst), params.clone())
            .backend(Backend::Gpu {
                device: GpuDevice::TeslaC1060,
                tour: TourStrategy::NNList,
                pheromone: PheromoneStrategy::AtomicShared,
            })
            .iterations(3)
            .seed(5)
            .local_search(LocalSearch::TwoOptNn),
        SolveRequest::new(Arc::clone(inst), params.clone())
            .backend(Backend::GpuAcs { device: GpuDevice::TeslaM2050, acs: AcsParams::default() })
            .iterations(3)
            .seed(6),
        SolveRequest::new(Arc::clone(inst), params).backend(Backend::Auto).iterations(3).seed(7),
    ]
}

/// Everything observable about a batch that must not depend on the
/// observability setting or the worker count.
type BatchFingerprint = Vec<(u64, Vec<u32>, Option<u32>, Vec<IterationEvent>)>;

fn run_batch(workers: usize, observe: bool, inst: &Arc<tsp::TspInstance>) -> BatchFingerprint {
    let engine = Engine::new(EngineConfig::with_workers(workers).observe(observe));
    assert_eq!(engine.observability_enabled(), observe);
    let handles: Vec<_> = mixed_batch(inst).into_iter().map(|r| engine.submit(r)).collect();
    handles
        .into_iter()
        .map(|h| {
            let stream = h.progress();
            let report = h.wait().expect("job solves");
            assert_eq!(report.outcome, JobOutcome::Completed);
            let events: Vec<IterationEvent> = stream.collect();
            (report.best_len, report.best_tour.order().to_vec(), report.device.map(|d| d.0), events)
        })
        .collect()
}

/// Acceptance: observability cannot change solve results, device
/// placements, or progress sequences — pinned across the on/off setting
/// *and* 1 vs 4 workers simultaneously.
#[test]
fn results_placements_and_progress_identical_obs_on_off_at_1_and_4_workers() {
    let inst = Arc::new(tsp::uniform_random("obs-det", 32, 500.0, 13));
    let baseline = run_batch(1, true, &inst);
    for (workers, observe) in [(1, false), (4, true), (4, false)] {
        assert_eq!(
            baseline,
            run_batch(workers, observe, &inst),
            "batch changed at workers={workers} observe={observe}"
        );
    }
}

/// The shared latency bucket boundaries are part of the export contract
/// (dashboards depend on them); any change must be deliberate.
#[test]
fn latency_bucket_boundaries_are_pinned() {
    assert_eq!(LATENCY_BUCKETS_MS, [0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0]);
    assert!(LATENCY_BUCKETS_MS.windows(2).all(|w| w[0] < w[1]), "bounds strictly increasing");
}

/// Timeline structure: every job that ran has exactly one iteration span
/// per completed iteration, in order, with non-negative phase times; the
/// scalar latencies are present and non-negative (no wall-clock
/// thresholds — structure only).
#[test]
fn timelines_have_one_span_per_iteration_and_sane_structure() {
    let inst = Arc::new(tsp::uniform_random("obs-tl", 32, 500.0, 17));
    let engine = Engine::new(EngineConfig::with_workers(2));
    let handles: Vec<_> = mixed_batch(&inst).into_iter().map(|r| engine.submit(r)).collect();
    for h in handles {
        let report = h.wait().expect("job solves");
        let tl = h.timeline().expect("observability defaults on");
        assert!(!tl.backend.is_empty(), "backend label recorded");
        assert_eq!(tl.device, report.device.map(|d| d.0), "trace device matches report");
        assert_eq!(tl.iterations.len(), report.iterations, "one span per iteration");
        for (k, s) in tl.iterations.iter().enumerate() {
            assert_eq!(s.iteration, k as u64, "spans in iteration order");
            assert!(s.construction_ms >= 0.0 && s.local_search_ms >= 0.0 && s.pheromone_ms >= 0.0);
            assert!(s.total_ms() > 0.0, "modeled phases cannot all be zero");
        }
        assert_eq!(tl.dropped_iterations, 0, "short jobs fit the trace bound");
        assert!(tl.queue_wait_ms >= 0.0 && tl.placement_ms >= 0.0 && tl.post_pass_ms >= 0.0);
        let first = tl.first_event_ms.expect("completed jobs emitted progress");
        // Monotone pipeline: the first event cannot precede the queue
        // wait that delivered the job to a worker.
        assert!(first >= tl.queue_wait_ms, "first event at {first} before queue wait");
        assert!(tl.solve_wall_ms >= 0.0, "solve wall recorded");
        assert_eq!(tl.job, h.id().as_u64());
        // GPU-placed jobs profile their kernel families; pure-CPU jobs
        // launch no kernels.
        if report.device.is_some() {
            assert!(!tl.kernels.is_empty(), "GPU job records kernel profiles");
            for k in &tl.kernels {
                assert!(k.invocations > 0 && k.modeled_ms > 0.0);
            }
        }
        assert_eq!(h.progress_dropped(), 0, "default buffer holds these short streams");
    }
    // Every job ran, so every timeline landed in the engine ring.
    assert_eq!(engine.recent_timelines().len(), 7);
    assert_eq!(engine.timelines_evicted(), 0);
}

/// The artifact cache-hit flag is per-job attributable at one worker:
/// the first job on an instance builds, every later one hits.
#[test]
fn cache_hit_flag_attributes_first_build_at_one_worker() {
    let inst = Arc::new(tsp::uniform_random("obs-cache", 28, 400.0, 3));
    let engine = Engine::new(EngineConfig::with_workers(1));
    let req = |seed| {
        SolveRequest::new(Arc::clone(&inst), AcoParams::default().nn(8).ants(8))
            .backend(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList })
            .iterations(2)
            .seed(seed)
    };
    let handles: Vec<_> = (0..3).map(|s| engine.submit(req(s))).collect();
    let hits: Vec<Option<bool>> = handles
        .iter()
        .map(|h| {
            h.wait().expect("job solves");
            h.timeline().expect("obs on").artifact_cache_hit
        })
        .collect();
    assert_eq!(hits, vec![Some(false), Some(true), Some(true)]);
}

/// Disabled observability: no timelines, no metrics, empty snapshot —
/// and the handles still work.
#[test]
fn disabled_observability_records_nothing() {
    let inst = Arc::new(tsp::uniform_random("obs-off", 28, 400.0, 5));
    let engine = Engine::new(EngineConfig::with_workers(1).observe(false));
    let h = engine.submit(
        SolveRequest::new(Arc::clone(&inst), AcoParams::default().nn(8).ants(8))
            .backend(Backend::Gpu {
                device: GpuDevice::TeslaM2050,
                tour: TourStrategy::DataParallelTex,
                pheromone: PheromoneStrategy::AtomicShared,
            })
            .iterations(2)
            .seed(1),
    );
    h.wait().expect("job solves");
    assert!(h.timeline().is_none(), "no trace allocated when disabled");
    assert_eq!(h.progress_dropped(), 0);
    assert!(engine.recent_timelines().is_empty());
    let snap = engine.metrics();
    assert!(snap.counters.is_empty() && snap.gauges.is_empty());
    assert!(snap.histograms.is_empty() && snap.kernels.is_empty());
    assert!(snap.to_prometheus().is_empty());
}

/// Engine metrics snapshot: scheduler counters reconcile with the batch,
/// histogram counts conserve (sum of buckets == count == jobs), and the
/// bridged per-device / cache series appear with label-embedded names.
#[test]
fn metrics_snapshot_reconciles_with_the_batch() {
    let inst = Arc::new(tsp::uniform_random("obs-met", 32, 500.0, 23));
    let engine = Engine::new(EngineConfig::with_workers(2));
    let handles: Vec<_> = mixed_batch(&inst).into_iter().map(|r| engine.submit(r)).collect();
    for h in &handles {
        h.wait().expect("job solves");
    }
    let snap = engine.metrics();
    let counter = |name: &str| snap.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
    let gauge = |name: &str| snap.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
    assert_eq!(counter("aco_engine_jobs_submitted_total"), Some(7));
    assert_eq!(counter("aco_engine_jobs_completed_total"), Some(7));
    assert_eq!(counter("aco_engine_jobs_failed_total"), Some(0));
    assert_eq!(gauge("aco_engine_jobs_running"), Some(0), "batch fully drained");
    assert_eq!(gauge("aco_engine_queue_depth"), Some(0));
    // The cache series bridge the native counters exactly.
    let cs = engine.cache_stats();
    assert_eq!(counter("aco_cache_artifact_hits_total"), Some(cs.artifact_hits));
    assert_eq!(counter("aco_cache_artifact_misses_total"), Some(cs.artifact_misses));
    // Per-device series exist for every pool device, labels embedded.
    for d in engine.device_stats() {
        let name = format!("aco_device_queued{{device=\"{}\"}}", d.name);
        assert_eq!(gauge(&name), Some(0), "drained queue for {}", d.name);
        let waits = format!("aco_device_admission_waits_total{{device=\"{}\"}}", d.name);
        assert_eq!(counter(&waits), Some(d.admission_waits));
    }
    // Latency histograms: one observation per job that ran, buckets
    // conserve the count, sums non-negative — no wall-clock thresholds.
    for h in ["aco_engine_queue_wait_ms", "aco_engine_first_event_ms", "aco_engine_placement_ms"] {
        let hist = snap
            .histograms
            .iter()
            .find(|s| s.name == h)
            .unwrap_or_else(|| panic!("{h} registered"));
        assert_eq!(hist.bounds, LATENCY_BUCKETS_MS.to_vec(), "{h} uses the shared bounds");
        assert_eq!(hist.count, 7, "{h}: one observation per job");
        assert_eq!(hist.buckets.iter().sum::<u64>(), hist.count, "{h}: buckets conserve count");
        assert!(hist.sum_ms >= 0.0);
    }
    // Kernel profiler: the explicit-GPU jobs launched kernels; every
    // family shows positive invocations and modeled time, and the
    // Prometheus text carries them with family labels.
    assert!(!snap.kernels.is_empty(), "GPU jobs profile kernel families");
    let text = snap.to_prometheus();
    assert!(text.contains("aco_kernel_invocations_total{family=\"tour_"));
    assert!(text.contains("# TYPE aco_engine_queue_wait_ms histogram"));
    assert!(text.contains("aco_engine_queue_wait_ms_bucket{le=\"+Inf\"} 7"));
}
