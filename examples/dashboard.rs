//! Search dynamics, the event journal, and the live dashboard.
//!
//! Runs a mixed batch with dynamics tracking and the JSONL event journal
//! enabled, then renders the engine dashboard (per-device utilisation +
//! per-job convergence sparklines), prints a slice of the journal, and
//! replays one job's timeline purely from the exported journal text —
//! no live engine required.
//!
//! ```text
//! cargo run --release --example dashboard
//! ```

use std::sync::Arc;

use aco_gpu::core::cpu::TourPolicy;
use aco_gpu::core::gpu::{PheromoneStrategy, TourStrategy};
use aco_gpu::core::AcoParams;
use aco_gpu::engine::{
    replay_timeline, Backend, DynamicsConfig, Engine, EngineConfig, GpuDevice, JournalConfig,
    SolveRequest,
};
use aco_gpu::tsp;

fn main() {
    let inst = Arc::new(tsp::uniform_random("dash", 60, 800.0, 13));
    let params = AcoParams::default().nn(12);

    // Dynamics and the journal are opt-in; both are write-only, so every
    // solve result is bit-identical with them on or off.
    let engine = Engine::new(
        EngineConfig::with_workers(3)
            .dynamics(DynamicsConfig::default().window(15).entropy_floor(0.05))
            .journal(JournalConfig::default().capacity(2048).sample_every(4)),
    );

    let backends = [
        Backend::CpuSequential { policy: TourPolicy::NearestNeighborList },
        Backend::CpuParallel { policy: TourPolicy::NearestNeighborList, threads: 3 },
        Backend::CpuMmas(Default::default()),
        Backend::Gpu {
            device: GpuDevice::TeslaM2050,
            tour: TourStrategy::NNListSharedTex,
            pheromone: PheromoneStrategy::AtomicShared,
        },
        Backend::Auto,
    ];
    let handles: Vec<_> = backends
        .iter()
        .enumerate()
        .map(|(seed, backend)| {
            engine.submit(
                SolveRequest::new(Arc::clone(&inst), params.clone())
                    .backend(backend.clone())
                    .iterations(30)
                    .seed(seed as u64),
            )
        })
        .collect();
    for h in &handles {
        let rep = h.wait().expect("job solves");
        println!(
            "{:<22} best {:>6}  restarts {}  outcome {:?}",
            rep.backend.label(),
            rep.best_len,
            rep.restarts,
            rep.outcome
        );
    }

    println!("\n=== dashboard ===");
    print!("{}", engine.render_dashboard());

    let journal = engine.journal_export().expect("journal configured");
    println!("\n=== journal (first 8 of {} lines) ===", journal.lines().count());
    for line in journal.lines().take(8) {
        println!("{line}");
    }

    // Offline replay: rebuild job 0's timeline from nothing but the
    // exported JSONL text.
    let replayed = replay_timeline(&journal, 0).expect("job 0 completed");
    println!("\n=== job 0 replayed from the journal ===");
    println!("{}", replayed.render());
}
