//! The HTTP observability endpoint: serve metrics, health, SLOs and the
//! journal stream while a batch runs, then fetch them back over plain
//! `TcpStream` (no HTTP client needed — the endpoint is std-only on both
//! sides).
//!
//! Boots [`Engine::serve_observability`] on an ephemeral port, runs a
//! mixed batch with rolling windows + journal enabled, GETs `/metrics`,
//! `/healthz` and a bounded slice of `/events`, prints excerpts, and
//! shuts the endpoint down cleanly. The CI `obs-serve` job runs exactly
//! this binary.
//!
//! ```text
//! cargo run --release --example obs_serve
//! ```

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use aco_gpu::core::AcoParams;
use aco_gpu::engine::{
    Backend, Engine, EngineConfig, JournalConfig, SloObjective, SloSpec, SolveRequest, WindowConfig,
};
use aco_gpu::tsp;

/// Minimal blocking GET; returns the body (panics on malformed replies —
/// this is an example/CI driver, not a client library).
fn http_get(addr: SocketAddr, target: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    write!(s, "GET {target} HTTP/1.1\r\nHost: example\r\nConnection: close\r\n\r\n")
        .expect("send request");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read response");
    let (head, body) = out.split_once("\r\n\r\n").expect("head/body split");
    assert!(head.starts_with("HTTP/1.1 200"), "GET {target}: {head}");
    body.to_string()
}

fn main() {
    // Structural SLOs only: the default board also watches queue-wait
    // latency, whose alert state depends on real wall-clock waits and
    // therefore on machine load — fine for production, not for a CI
    // driver that asserts `"status":"ok"` below.
    let slos = vec![
        SloSpec::new("job-availability", SloObjective::FailureRate { budget: 0.01 }),
        SloSpec::new("device-health", SloObjective::DeviceHealth),
        SloSpec::new("device-fault-rate", SloObjective::DeviceFaultRate { budget_per_sec: 0.5 }),
    ];
    let engine = Engine::new(
        EngineConfig::with_workers(3)
            .windows(WindowConfig::default().bucket_ms(100))
            .slos(slos)
            .journal(JournalConfig::default()),
    );
    // Port 0: the OS picks a free port; read it back from the server.
    let mut server = engine.serve_observability("127.0.0.1:0").expect("bind endpoint");
    let addr = server.local_addr();
    println!("observability endpoint on http://{addr}");

    let inst = Arc::new(tsp::uniform_random("serve", 48, 800.0, 42));
    let handles: Vec<_> = (0..6)
        .map(|seed| {
            engine.submit(
                SolveRequest::new(Arc::clone(&inst), AcoParams::default().nn(10))
                    .backend(Backend::Auto)
                    .iterations(8)
                    .seed(seed),
            )
        })
        .collect();
    for h in handles {
        h.wait().expect("job solves");
    }

    let metrics = http_get(addr, "/metrics");
    println!("\n=== GET /metrics ({} lines, first 12) ===", metrics.lines().count());
    for line in metrics.lines().take(12) {
        println!("{line}");
    }
    assert!(metrics.contains("aco_engine_jobs_completed_total 6"), "all jobs counted");

    let health = http_get(addr, "/healthz");
    println!("\n=== GET /healthz ===\n{health}");
    assert!(health.contains("\"status\":\"ok\""), "healthy engine");

    // A bounded journal read: ?max= keeps the SSE stream finite so a
    // plain read-to-EOF works.
    let events = http_get(addr, "/events?max=5");
    println!("=== GET /events?max=5 ===\n{events}");
    assert!(events.contains("id: 0"), "stream starts at the epoch meta line");

    server.shutdown();
    println!("endpoint shut down cleanly");
}
