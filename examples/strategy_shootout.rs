//! Strategy shootout: every kernel strategy of the paper on one instance,
//! both devices — a miniature of Tables II–IV for your own workload.
//!
//! ```text
//! cargo run --release --example strategy_shootout [n]
//! ```

use aco_gpu::core::gpu::{run_pheromone, run_tour, ColonyBuffers, PheromoneStrategy, TourStrategy};
use aco_gpu::core::AcoParams;
use aco_gpu::simt::rng::PmRng;
use aco_gpu::simt::{DeviceSpec, GlobalMem, SimMode};
use aco_gpu::tsp::{self, Tour};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(96);
    let inst = tsp::uniform_random("shootout", n, 1000.0, 11);
    let params = AcoParams::default().nn(20.min(n - 1)).seed(3);
    let mode = if n <= 128 { SimMode::Full } else { SimMode::SampleBlocks(4) };

    println!("tour construction on {n} cities, m = n ants (ms, modeled):\n");
    println!("{:<42} {:>12} {:>12}", "strategy", "C1060", "M2050");
    for strategy in TourStrategy::ALL {
        let mut row = format!("{:<42}", strategy.paper_row());
        for dev in [DeviceSpec::tesla_c1060(), DeviceSpec::tesla_m2050()] {
            let mut gm = GlobalMem::new();
            let bufs = ColonyBuffers::allocate(&mut gm, &inst, &params);
            let r = run_tour(&dev, &mut gm, bufs, strategy, 1.0, 2.0, 5, 0, mode)
                .expect("launch fits the device");
            row.push_str(&format!(" {:>12.3}", r.total_ms()));
        }
        println!("{row}");
    }

    println!("\npheromone update (ms, modeled):\n");
    println!("{:<42} {:>12} {:>12}", "strategy", "C1060", "M2050");
    for strategy in PheromoneStrategy::ALL {
        let mut row = format!("{:<42}", strategy.paper_row());
        for dev in [DeviceSpec::tesla_c1060(), DeviceSpec::tesla_m2050()] {
            let mut gm = GlobalMem::new();
            let bufs = ColonyBuffers::allocate(&mut gm, &inst, &params);
            // Host-built tours so the update sees realistic edges.
            let tours: Vec<Tour> = (0..n)
                .map(|a| {
                    let mut pm = PmRng::new(PmRng::thread_seed(4, a as u64));
                    let mut order: Vec<u32> = (0..n as u32).collect();
                    for i in (1..n).rev() {
                        let j = (pm.next_f64() * (i + 1) as f64) as usize;
                        order.swap(i, j);
                    }
                    Tour::new_unchecked(order)
                })
                .collect();
            bufs.upload_tours(&mut gm, &tours, inst.matrix());
            let r = run_pheromone(&dev, &mut gm, bufs, strategy, 0.5, mode)
                .expect("launch fits the device");
            row.push_str(&format!(" {:>12.3}", r.time.total_ms));
        }
        println!("{row}");
    }

    println!("\n(the paper's full tables: cargo run --release -p aco-bench --bin repro)");
}
