//! Per-iteration local search: strategy selection and the improvement
//! telemetry.
//!
//! Runs the same seed study under every `LocalSearch` strategy — on a CPU
//! colony and on a simulated-GPU colony (where `TwoOptNn` executes as the
//! `two_opt` kernel family) — and prints the quality / modeled-time
//! trade-off plus each job's `local_search_improvement`.
//!
//! ```text
//! cargo run --release --example local_search
//! ```

use std::sync::Arc;

use aco_gpu::core::cpu::TourPolicy;
use aco_gpu::core::gpu::{PheromoneStrategy, TourStrategy};
use aco_gpu::core::AcoParams;
use aco_gpu::engine::{
    Backend, Engine, EngineConfig, GpuDevice, LocalSearch, LsScope, SolveRequest,
};
use aco_gpu::tsp;

fn main() {
    let inst = Arc::new(tsp::uniform_random("ls-demo", 96, 1200.0, 7));
    let params = AcoParams::default().nn(15);
    let engine = Engine::new(EngineConfig::default());
    println!("instance {} (n = {}), {} iterations per job\n", inst.name(), inst.n(), 8);

    let backends = [
        ("cpu-seq", Backend::CpuSequential { policy: TourPolicy::NearestNeighborList }),
        (
            "gpu-m2050/NNList",
            Backend::Gpu {
                device: GpuDevice::TeslaM2050,
                tour: TourStrategy::NNList,
                pheromone: PheromoneStrategy::AtomicShared,
            },
        ),
    ];

    println!(
        "{:<18} {:<10} {:>8} {:>12} {:>12}",
        "backend", "strategy", "best", "improvement", "modeled ms"
    );
    for (label, backend) in &backends {
        for ls in LocalSearch::ALL {
            let rep = engine
                .submit(
                    SolveRequest::new(Arc::clone(&inst), params.clone())
                        .backend(backend.clone())
                        .iterations(8)
                        .seed(42)
                        .local_search(ls)
                        .local_search_scope(LsScope::IterationBest),
                )
                .wait()
                .expect("job solves");
            println!(
                "{:<18} {:<10} {:>8} {:>12} {:>12.3}",
                label,
                ls.label(),
                rep.best_len,
                rep.local_search_improvement,
                rep.modeled_ms
            );
        }
        println!();
    }

    // The full ACOTSP hybrid: improve *every* ant, not just the
    // iteration best — better quality for m× the local-search cost.
    let all_ants = engine
        .submit(
            SolveRequest::new(Arc::clone(&inst), params.clone())
                .backend(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList })
                .iterations(8)
                .seed(42)
                .local_search(LocalSearch::TwoOptNn)
                .local_search_scope(LsScope::AllAnts),
        )
        .wait()
        .expect("job solves");
    println!(
        "{:<18} {:<10} {:>8} {:>12} {:>12.3}   (scope: all-ants)",
        "cpu-seq",
        LocalSearch::TwoOptNn.label(),
        all_ants.best_len,
        all_ants.local_search_improvement,
        all_ants.modeled_ms
    );
}
