//! TSPLIB solver: load a `.tsp` file (or a synthetic stand-in), run your
//! choice of ACO variant with optional 2-opt, and report the gap to the
//! best-known solution.
//!
//! ```text
//! cargo run --release --example tsplib_solver -- [path.tsp|name] [as|acs|mmas] [iters]
//! ```

use aco_gpu::core::cpu::acs::{AcsParams, AntColonySystem};
use aco_gpu::core::cpu::mmas::{MaxMinAntSystem, MmasParams};
use aco_gpu::core::cpu::TourPolicy;
use aco_gpu::core::{AcoParams, AntSystem};
use aco_gpu::tsp::{self, two_opt::two_opt, NearestNeighborLists, TspInstance};

fn load(arg: &str) -> TspInstance {
    if arg.ends_with(".tsp") {
        match tsp::tsplib::load(arg) {
            Ok(i) => return i,
            Err(e) => {
                eprintln!("could not load {arg}: {e}; falling back to a synthetic instance");
            }
        }
    }
    tsp::paper_instance(arg).unwrap_or_else(|| tsp::uniform_random(arg, 150, 1000.0, 7))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let inst = load(args.first().map(String::as_str).unwrap_or("kroC100"));
    let algo = args.get(1).map(String::as_str).unwrap_or("as").to_lowercase();
    let iters: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(50);

    println!("solving {} (n = {}) with {} for {iters} iterations", inst.name(), inst.n(), algo);
    let params = AcoParams::default().nn(20.min(inst.n() - 1)).seed(1);

    let (mut best_tour, best_len) = match algo.as_str() {
        "acs" => {
            let mut acs = AntColonySystem::new(&inst, params, AcsParams::default());
            acs.run(iters);
            let (t, l) = acs.best().expect("iterations ran");
            (t.clone(), l)
        }
        "mmas" => {
            let mut mmas = MaxMinAntSystem::new(&inst, params, MmasParams::default());
            mmas.run(iters);
            let (t, l) = mmas.best().expect("iterations ran");
            (t.clone(), l)
        }
        _ => {
            let mut aco = AntSystem::new(&inst, params);
            aco.run(iters, TourPolicy::NearestNeighborList);
            let (t, l) = aco.best().expect("iterations ran");
            (t.clone(), l)
        }
    };
    println!("  ACO best            : {best_len}");

    // Polish with 2-opt (the classic ACOTSP post-step).
    let nn = NearestNeighborLists::build(inst.matrix(), 15.min(inst.n() - 1)).expect("n >= 2");
    let moves = two_opt(&mut best_tour, inst.matrix(), &nn);
    let polished = best_tour.length(inst.matrix());
    println!("  after 2-opt ({moves:>4} moves): {polished}");

    if let Some(meta) = tsp::generator::PAPER_INSTANCES.iter().find(|p| p.name == inst.name()) {
        println!(
            "  (real TSPLIB {} optimum is {}; synthetic stand-ins differ by construction)",
            meta.name, meta.best_known
        );
    }
    let greedy = tsp::nearest_neighbor_tour(inst.matrix(), 0).length(inst.matrix());
    println!(
        "  greedy NN = {greedy}; ACO+2opt improves it by {:.1}%",
        100.0 * (greedy as f64 - polished as f64) / greedy as f64
    );
}
