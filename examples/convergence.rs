//! Convergence study: best-so-far tour length per iteration for the
//! sequential Ant System and two GPU strategies, written as CSV — the
//! quality-over-time view behind the paper's "results are similar" remark.
//!
//! The series are produced through the batch engine with search-dynamics
//! tracking on: each backend runs as one submitted job, the per-iteration
//! values arrive on the job's [`JobHandle::progress`] stream, and every
//! event carries the colony's trail entropy and mean λ-branching factor,
//! which land in the CSV next to the tour lengths.
//!
//! ```text
//! cargo run --release --example convergence -- [n] [iters]
//! ```

use std::sync::Arc;

use aco_gpu::core::gpu::{PheromoneStrategy, TourStrategy};
use aco_gpu::core::{AcoParams, TourPolicy};
use aco_gpu::engine::{Backend, DynamicsConfig, Engine, EngineConfig, GpuDevice, SolveRequest};
use aco_gpu::tsp;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(80);
    let iters: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(40);
    let inst = Arc::new(tsp::uniform_random("conv", n, 1000.0, 23));
    let params = AcoParams::default().nn(15.min(n - 1)).seed(5);

    let engine =
        Engine::new(EngineConfig::with_workers(3).dynamics(DynamicsConfig::default().window(10)));
    let series = [
        ("cpu", Backend::CpuSequential { policy: TourPolicy::NearestNeighborList }),
        (
            "gpu_task_nn",
            Backend::Gpu {
                device: GpuDevice::TeslaM2050,
                tour: TourStrategy::NNListSharedTex,
                pheromone: PheromoneStrategy::AtomicShared,
            },
        ),
        (
            "gpu_data_parallel",
            Backend::Gpu {
                device: GpuDevice::TeslaM2050,
                tour: TourStrategy::DataParallelTex,
                pheromone: PheromoneStrategy::AtomicShared,
            },
        ),
    ];
    let handles: Vec<_> = series
        .iter()
        .map(|(_, backend)| {
            engine.submit(
                SolveRequest::new(Arc::clone(&inst), params.clone())
                    .backend(backend.clone())
                    .iterations(iters)
                    .progress_events(iters),
            )
        })
        .collect();
    // Drain the complete event stream of each job (the buffers are sized
    // to the iteration count, so nothing is dropped).
    let streams: Vec<Vec<_>> = handles.iter().map(|h| h.progress().collect()).collect();
    for (h, (name, _)) in handles.iter().zip(&series) {
        let report = h.wait().expect("job succeeds");
        println!("{name:>18}: best {} ({} iterations)", report.best_len, report.iterations);
    }

    let mut csv = String::from("iteration");
    for (name, _) in &series {
        csv.push_str(&format!(",{name},{name}_entropy,{name}_branching"));
    }
    csv.push('\n');
    println!(
        "\n{:>5} {:>12} {:>14} {:>18}  (entropy / branching per series in the CSV)",
        "iter", "cpu", "gpu task NN", "gpu data-parallel"
    );
    for it in 0..iters {
        csv.push_str(&format!("{}", it + 1));
        for events in &streams {
            let ev = events[it];
            let stats = ev.stats.expect("dynamics on: every event carries stats");
            csv.push_str(&format!(
                ",{},{:.6},{:.4}",
                ev.best_so_far, stats.entropy, stats.lambda_branching
            ));
        }
        csv.push('\n');
        if (it + 1) % 5 == 0 || it == 0 {
            println!(
                "{:>5} {:>12} {:>14} {:>18}",
                it + 1,
                streams[0][it].best_so_far,
                streams[1][it].best_so_far,
                streams[2][it].best_so_far,
            );
        }
    }

    let out = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(out);
    let path = out.join("convergence.csv");
    match std::fs::write(&path, csv) {
        Ok(()) => println!("\nseries written to {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
