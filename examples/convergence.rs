//! Convergence study: best-so-far tour length per iteration for the
//! sequential Ant System and two GPU strategies, written as CSV — the
//! quality-over-time view behind the paper's "results are similar" remark.
//!
//! ```text
//! cargo run --release --example convergence -- [n] [iters]
//! ```

use aco_gpu::core::cpu::{AntSystem, TourPolicy};
use aco_gpu::core::gpu::{GpuAntSystem, PheromoneStrategy, TourStrategy};
use aco_gpu::core::AcoParams;
use aco_gpu::simt::{DeviceSpec, SimMode};
use aco_gpu::tsp;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(80);
    let iters: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(40);
    let inst = tsp::uniform_random("conv", n, 1000.0, 23);
    let params = AcoParams::default().nn(15.min(n - 1)).seed(5);

    let mut cpu = AntSystem::new(&inst, params.clone());
    let mut gpu_task = GpuAntSystem::new(
        &inst,
        params.clone(),
        DeviceSpec::tesla_m2050(),
        TourStrategy::NNListSharedTex,
        PheromoneStrategy::AtomicShared,
    );
    let mut gpu_dp = GpuAntSystem::new(
        &inst,
        params,
        DeviceSpec::tesla_m2050(),
        TourStrategy::DataParallelTex,
        PheromoneStrategy::AtomicShared,
    );

    let mut csv = String::from("iteration,cpu,gpu_task_nn,gpu_data_parallel\n");
    println!("{:>5} {:>12} {:>14} {:>18}", "iter", "cpu", "gpu task NN", "gpu data-parallel");
    for it in 1..=iters {
        let c = cpu.iterate(TourPolicy::NearestNeighborList).best_so_far;
        let t = gpu_task.iterate(SimMode::Full).expect("valid launch").best_so_far;
        let d = gpu_dp.iterate(SimMode::Full).expect("valid launch").best_so_far;
        csv.push_str(&format!("{it},{c},{t},{d}\n"));
        if it % 5 == 0 || it == 1 {
            println!("{it:>5} {c:>12} {t:>14} {d:>18}");
        }
    }

    let out = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(out);
    let path = out.join("convergence.csv");
    match std::fs::write(&path, csv) {
        Ok(()) => println!("\nseries written to {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
