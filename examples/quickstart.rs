//! Quickstart: solve a TSP instance with the Ant System, on the CPU and on
//! a simulated Tesla M2050.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use aco_gpu::core::cpu::TourPolicy;
use aco_gpu::core::gpu::{GpuAntSystem, PheromoneStrategy, TourStrategy};
use aco_gpu::core::{AcoParams, AntSystem};
use aco_gpu::simt::DeviceSpec;
use aco_gpu::tsp;

fn main() {
    // A 100-city instance; swap in `tsp::tsplib::load("kroC100.tsp")` to
    // use a real TSPLIB file.
    let inst = tsp::uniform_random("demo100", 100, 1000.0, 42);
    let params = AcoParams::default().nn(20).seed(7);
    let iterations = 30;

    // Greedy baseline for context.
    let greedy = tsp::nearest_neighbor_tour(inst.matrix(), 0).length(inst.matrix());
    println!("instance {:>10}: n = {}, greedy nearest-neighbour = {greedy}", inst.name(), inst.n());

    // --- CPU reference (the paper's sequential baseline) -------------------
    let mut cpu = AntSystem::new(&inst, params.clone());
    let cpu_best = cpu.run(iterations, TourPolicy::NearestNeighborList);
    println!("CPU Ant System          : best {cpu_best} after {iterations} iterations");

    // --- the paper's GPU design on the simulated Fermi ---------------------
    let mut gpu = GpuAntSystem::new(
        &inst,
        params,
        DeviceSpec::tesla_m2050(),
        TourStrategy::DataParallelTex,
        PheromoneStrategy::AtomicShared,
    );
    let gpu_best = gpu.run(iterations).expect("launch fits the device");
    let (tour, _) = gpu.best().expect("iterations ran");
    println!("GPU Ant System (M2050)  : best {gpu_best} after {iterations} iterations");
    assert!(tour.is_valid());

    println!(
        "both beat greedy by {:.1}% / {:.1}%",
        100.0 * (greedy as f64 - cpu_best as f64) / greedy as f64,
        100.0 * (greedy as f64 - gpu_best as f64) / greedy as f64,
    );
}
