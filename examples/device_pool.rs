//! Sharding a GPU batch across a simulated multi-device pool: custom
//! device profiles, affinity-aware placement, and per-device telemetry.
//!
//! ```text
//! cargo run --release --example device_pool
//! ```

use std::sync::Arc;

use aco_gpu::core::gpu::{PheromoneStrategy, TourStrategy};
use aco_gpu::core::AcoParams;
use aco_gpu::engine::{
    Backend, DeviceAffinity, DeviceId, DeviceProfile, Engine, EngineConfig, GpuDevice, SolveRequest,
};
use aco_gpu::tsp;

fn main() {
    // A heterogeneous fleet: two C1060s (one salvaged part with half the
    // SMs), two M2050s — one of them donating 2 host threads to
    // block-level simulation and admitting 2 resident jobs.
    let engine = Engine::new(EngineConfig::default().devices(vec![
        DeviceProfile::tesla_c1060("g0"),
        DeviceProfile::tesla_c1060("g1-salvage").sm_count(15).mem_bandwidth(51.0),
        DeviceProfile::tesla_m2050("f0"),
        DeviceProfile::tesla_m2050("f1-big").exec_threads(2).slots(2),
    ]));
    let inst = Arc::new(tsp::uniform_random("pool-demo", 96, 1000.0, 7));
    let params = AcoParams::default().nn(16);
    println!(
        "engine: {} workers over a {}-device pool, instance {} (n = {})\n",
        engine.workers(),
        engine.pool().len(),
        inst.name(),
        inst.n()
    );

    // A 12-job batch: alternating device models, one job pinned to the
    // salvaged part, one preferring the big Fermi.
    let handles: Vec<_> = (0..12u64)
        .map(|j| {
            let device = if j % 2 == 0 { GpuDevice::TeslaC1060 } else { GpuDevice::TeslaM2050 };
            let affinity = match j {
                4 => DeviceAffinity::Pinned(DeviceId(1)),
                5 => DeviceAffinity::Preferred(DeviceId(3)),
                _ => DeviceAffinity::Any,
            };
            let req = SolveRequest::new(Arc::clone(&inst), params.clone())
                .backend(Backend::Gpu {
                    device,
                    tour: TourStrategy::NNListSharedTex,
                    pheromone: PheromoneStrategy::AtomicShared,
                })
                .iterations(5)
                .seed(j)
                .affinity(affinity);
            engine.submit(req)
        })
        .collect();

    println!("{:<5} {:>10} {:>8} {:>12} {:>8}", "job", "device", "best", "modeled ms", "events");
    for (j, h) in handles.into_iter().enumerate() {
        let events = h.progress().count() as u64;
        let rep = h.wait().expect("job solves");
        let device = rep.device.map_or("cpu".into(), |d| d.to_string());
        println!("{j:<5} {device:>10} {:>8} {:>12.3} {events:>8}", rep.best_len, rep.modeled_ms);
    }

    println!("\nper-device telemetry:");
    println!(
        "{:<12} {:<7} {:>5} {:>10} {:>10} {:>12} {:>6} {:>6}",
        "device", "model", "jobs", "busy ms", "max depth", "assigned ms", "slots", "exec"
    );
    for d in engine.device_stats() {
        println!(
            "{:<12} {:<7} {:>5} {:>10.1} {:>10} {:>12.2} {:>6} {:>6}",
            d.name,
            d.model.label(),
            d.completed,
            d.busy_ms,
            d.peak_depth,
            d.assigned_ms,
            d.slots,
            d.exec_threads
        );
    }
}
