//! GPU profile: per-kernel breakdown of the performance model — which
//! roofline term binds, occupancy, and the microarchitectural event
//! counters the paper's analysis is written in terms of.
//!
//! ```text
//! cargo run --release --example gpu_profile -- [n] [c1060|m2050]
//! ```

use aco_gpu::core::gpu::{run_pheromone, run_tour, ColonyBuffers, PheromoneStrategy, TourStrategy};
use aco_gpu::core::AcoParams;
use aco_gpu::simt::rng::PmRng;
use aco_gpu::simt::{DeviceSpec, GlobalMem, KernelStats, KernelTime, SimMode};
use aco_gpu::tsp::{self, Tour};

fn print_time(label: &str, t: &KernelTime) {
    println!(
        "  {label:<34} total {:>9.3} ms  [compute {:>8.3} | memory {:>8.3} | latency {:>8.3} | bound: {}]",
        t.total_ms,
        t.compute_ms,
        t.memory_ms,
        t.latency_ms,
        t.bound()
    );
}

fn print_stats(s: &KernelStats) {
    println!(
        "    warp instr {:>12.0}   dram bytes {:>14.0}   ld/st txn {:>10.0}/{:<10.0}",
        s.warp_instructions, s.dram_bytes, s.ld_transactions, s.st_transactions
    );
    println!(
        "    shared acc {:>12.0}   bank-conflict extra {:>7.0}   atomics {:>8.0} (+{:.0} replays)",
        s.shared_accesses, s.bank_conflict_extra, s.atomic_ops, s.atomic_conflicts
    );
    println!(
        "    divergent branches {:>6.0}   barriers {:>8.0}   tex h/m {:>8.0}/{:<8.0}   l1 h/m {:>8.0}/{:<8.0}",
        s.divergent_branches, s.barriers, s.tex_hits, s.tex_misses, s.l1_hits, s.l1_misses
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(128);
    let dev = match args.get(1).map(String::as_str) {
        Some("m2050") => DeviceSpec::tesla_m2050(),
        _ => DeviceSpec::tesla_c1060(),
    };
    let inst = tsp::uniform_random("profile", n, 1000.0, 19);
    let params = AcoParams::default().nn(20.min(n - 1)).seed(9);
    let mode = if n <= 128 { SimMode::Full } else { SimMode::SampleBlocks(4) };

    println!("profiling on {} (n = {n}, m = {n} ants)\n", dev.name);

    println!("tour construction:");
    for strategy in [
        TourStrategy::Baseline,
        TourStrategy::DeviceRng,
        TourStrategy::NNListSharedTex,
        TourStrategy::DataParallelTex,
    ] {
        let mut gm = GlobalMem::new();
        let bufs = ColonyBuffers::allocate(&mut gm, &inst, &params);
        let r = run_tour(&dev, &mut gm, bufs, strategy, 1.0, 2.0, 5, 0, mode)
            .expect("launch fits the device");
        print_time(strategy.paper_row(), &r.tour_time);
        println!(
            "    occupancy {:>5.2} ({} warps/SM, limited by {:?})",
            r.occupancy.occupancy, r.occupancy.active_warps_per_sm, r.occupancy.limiter
        );
        print_stats(&r.stats);
    }

    println!("\npheromone update:");
    for strategy in PheromoneStrategy::ALL {
        let mut gm = GlobalMem::new();
        let bufs = ColonyBuffers::allocate(&mut gm, &inst, &params);
        let tours: Vec<Tour> = (0..n)
            .map(|a| {
                let mut pm = PmRng::new(PmRng::thread_seed(2, a as u64));
                let mut order: Vec<u32> = (0..n as u32).collect();
                for i in (1..n).rev() {
                    let j = (pm.next_f64() * (i + 1) as f64) as usize;
                    order.swap(i, j);
                }
                Tour::new_unchecked(order)
            })
            .collect();
        bufs.upload_tours(&mut gm, &tours, inst.matrix());
        let r = run_pheromone(&dev, &mut gm, bufs, strategy, 0.5, mode)
            .expect("launch fits the device");
        print_time(strategy.paper_row(), &r.time);
        print_stats(&r.stats);
    }
}
