//! Surviving a misbehaving fleet: deterministic fault injection, the
//! retry/failover supervisor, and device health/quarantine in action.
//!
//! A 4-device pool where one device is flaky (40% transient faults) and
//! one is dead (every attempt fails); an 8-job batch runs under a retry
//! policy with healthy-device failover and CPU fallback, and the run
//! prints each job's attempt trail, the pool's health timeline, and the
//! supervisor's counters.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use std::sync::Arc;

use aco_gpu::core::gpu::{PheromoneStrategy, TourStrategy};
use aco_gpu::core::AcoParams;
use aco_gpu::engine::{
    Backend, DeviceAffinity, DeviceId, DeviceProfile, Engine, EngineConfig, Failover, FaultPlan,
    GpuDevice, RetryPolicy, SolveRequest,
};
use aco_gpu::tsp;

fn main() {
    // Injected kernel panics are part of the show — keep them off stderr
    // (genuine panics still surface through the failed results).
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| s.as_str())
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .is_some_and(|s| s.contains("injected"));
        if !injected {
            prev(info);
        }
    }));

    // g1 is flaky, g3 is dead; the plan is seeded, so every run of this
    // example tells the exact same story.
    let plan = FaultPlan::new(2011).flaky_device(1, 0.4).dead_device(3).panic_rate(0.05);
    let engine = Engine::new(
        EngineConfig::with_workers(4)
            .devices(vec![
                DeviceProfile::tesla_c1060("g0"),
                DeviceProfile::tesla_c1060("g1-flaky"),
                DeviceProfile::tesla_c1060("g2"),
                DeviceProfile::tesla_c1060("g3-dead"),
            ])
            .faults(plan),
    );
    let inst = Arc::new(tsp::uniform_random("fault-demo", 64, 800.0, 7));
    println!(
        "pool: {} devices (g1 flaky @ 40%, g3 dead), instance {} (n = {})\n",
        engine.pool().len(),
        inst.name(),
        inst.n()
    );

    // Half the batch *prefers* the bad devices (a soft preference is
    // honoured until its target is quarantined), so the health machine
    // walks the full Healthy -> Degraded -> Quarantined path instead of
    // soft-avoiding the suspects after their first failure.
    let handles: Vec<_> = (0..8u64)
        .map(|j| {
            let affinity = match j % 4 {
                0 => DeviceAffinity::Preferred(DeviceId(3)),
                2 => DeviceAffinity::Preferred(DeviceId(1)),
                _ => DeviceAffinity::Any,
            };
            engine.submit(
                SolveRequest::new(Arc::clone(&inst), AcoParams::default().nn(12))
                    .backend(Backend::Gpu {
                        device: GpuDevice::TeslaC1060,
                        tour: TourStrategy::NNList,
                        pheromone: PheromoneStrategy::AtomicShared,
                    })
                    .iterations(4)
                    .seed(j)
                    .affinity(affinity)
                    .retry(RetryPolicy::retries(2).failover(Failover::CpuFallback)),
            )
        })
        .collect();

    println!("{:<5} {:>9} {:>9} {:>8}  attempt trail", "job", "ran on", "attempts", "best");
    for (j, h) in handles.into_iter().enumerate() {
        match h.wait() {
            Ok(rep) => {
                let trail = if rep.faults.is_empty() {
                    "clean first attempt".to_string()
                } else {
                    rep.faults
                        .iter()
                        .map(|f| {
                            let site = f.device.map_or("cpu".into(), |d| d.to_string());
                            let kind = f.injected.map_or("genuine", |k| k.label());
                            format!("#{} {site} ({kind})", f.attempt)
                        })
                        .collect::<Vec<_>>()
                        .join(" -> ")
                };
                let ran_on = rep.device.map_or("cpu".into(), |d| d.to_string());
                println!("{j:<5} {ran_on:>9} {:>9} {:>8}  {trail}", rep.attempts, rep.best_len);
            }
            Err(e) => println!("{j:<5} {:>9} {:>9} {:>8}  terminal: {e}", "-", "-", "-"),
        }
    }

    println!("\ndevice health after the batch:");
    println!(
        "{:<10} {:>12} {:>10} {:>12} {:>12}",
        "device", "health", "completed", "quarantines", "faults seen"
    );
    for d in engine.device_stats() {
        println!(
            "{:<10} {:>12} {:>10} {:>12} {:>12}",
            d.name,
            format!("{:?}", d.health),
            d.completed,
            d.quarantines,
            d.faults_observed
        );
    }

    println!("\nhealth timeline (logical time = outcome notes + quarantine skips):");
    for e in engine.pool().health_events() {
        println!("  t={:<4} device {} -> {:?}", e.seq, e.device, e.state);
    }

    let metrics = engine.metrics();
    let counter =
        |name: &str| metrics.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0);
    println!(
        "\nsupervisor: {} retries, {} failovers, {} cpu fallbacks, {} injected faults, {} watchdog trips",
        counter("aco_engine_retries_total"),
        counter("aco_engine_failovers_total"),
        counter("aco_engine_cpu_fallbacks_total"),
        counter("aco_engine_faults_injected_total"),
        counter("aco_engine_watchdog_trips_total"),
    );
    engine.pool().assert_no_slot_leaks();
    println!("slot accounting: balanced (no leaked device slots)");
}
