//! Observability: per-job span timelines and the engine metrics
//! snapshot.
//!
//! Runs an 8-job mixed CPU/GPU batch, then prints each job's timeline —
//! queue wait → placement → per-iteration construction / local-search /
//! pheromone spans → post-pass — followed by the engine-wide metrics in
//! Prometheus text exposition format (counters, gauges, latency
//! histograms, per-kernel-family profiles).
//!
//! ```text
//! cargo run --release --example observability
//! ```

use std::sync::Arc;

use aco_gpu::core::cpu::TourPolicy;
use aco_gpu::core::gpu::{PheromoneStrategy, TourStrategy};
use aco_gpu::core::AcoParams;
use aco_gpu::engine::{Backend, Engine, EngineConfig, GpuDevice, LocalSearch, SolveRequest};
use aco_gpu::tsp;

fn main() {
    let inst = Arc::new(tsp::uniform_random("obs40", 40, 600.0, 7));
    let params = AcoParams::default().nn(10);

    // Observability is on by default; `observe(false)` turns the whole
    // subsystem into no-ops without changing any solve result.
    let engine = Engine::new(EngineConfig::with_workers(2));
    println!(
        "engine: {} workers, observability {}",
        engine.workers(),
        if engine.observability_enabled() { "on" } else { "off" }
    );

    // 8 jobs: CPU sequential, CPU parallel, explicit GPU, and auto —
    // two seeds each, one with a post-pass polish.
    let backends = [
        Backend::CpuSequential { policy: TourPolicy::NearestNeighborList },
        Backend::CpuParallel { policy: TourPolicy::NearestNeighborList, threads: 3 },
        Backend::Gpu {
            device: GpuDevice::TeslaM2050,
            tour: TourStrategy::DataParallelTex,
            pheromone: PheromoneStrategy::AtomicShared,
        },
        Backend::Auto,
    ];
    let handles: Vec<_> = backends
        .iter()
        .flat_map(|backend| {
            (0..2).map(|seed| {
                let mut req = SolveRequest::new(Arc::clone(&inst), params.clone())
                    .backend(backend.clone())
                    .iterations(4)
                    .seed(seed);
                if seed == 1 {
                    req = req.local_search(LocalSearch::PostPass);
                }
                engine.submit(req)
            })
        })
        .collect();

    println!("\n=== per-job timelines ===");
    for h in &handles {
        let rep = h.wait().expect("job solves");
        let timeline = h.timeline().expect("observability is on");
        println!(
            "{}  best = {}, dropped progress events = {}",
            timeline.render(),
            rep.best_len,
            h.progress_dropped()
        );
    }

    // The engine also keeps a bounded ring of recent timelines.
    println!(
        "engine ring holds {} timelines ({} evicted)",
        engine.recent_timelines().len(),
        engine.timelines_evicted()
    );

    println!("\n=== Prometheus snapshot ===");
    print!("{}", engine.metrics().to_prometheus());
}
