//! Batch solving with the engine: one seed study, three backends, shared
//! artifacts, cost-model auto-selection.
//!
//! ```text
//! cargo run --release --example engine_batch
//! ```

use std::sync::Arc;

use aco_gpu::core::cpu::TourPolicy;
use aco_gpu::core::gpu::{PheromoneStrategy, TourStrategy};
use aco_gpu::core::AcoParams;
use aco_gpu::engine::{Backend, Engine, EngineConfig, GpuDevice, SolveRequest};
use aco_gpu::tsp;

fn main() {
    // One shared instance; every job reuses its cached NN lists.
    let inst = Arc::new(tsp::uniform_random("demo120", 120, 1200.0, 42));
    let params = AcoParams::default().nn(20);
    let iterations = 10;

    let engine = Engine::new(EngineConfig::default());
    println!("engine: {} workers, instance {} (n = {})", engine.workers(), inst.name(), inst.n());

    // A seed study across three explicit backends plus `auto`.
    let backends = [
        Backend::CpuSequential { policy: TourPolicy::NearestNeighborList },
        Backend::CpuParallel { policy: TourPolicy::NearestNeighborList, threads: 4 },
        Backend::Gpu {
            device: GpuDevice::TeslaM2050,
            tour: TourStrategy::DataParallelTex,
            pheromone: PheromoneStrategy::AtomicShared,
        },
        Backend::Auto,
    ];
    let jobs = engine.run_batch(backends.iter().flat_map(|backend| {
        (0..3).map(|seed| {
            SolveRequest::new(Arc::clone(&inst), params.clone())
                .backend(backend.clone())
                .iterations(iterations)
                .seed(seed)
        })
    }));

    println!("\n{:<42} {:>6} {:>12} {:>6}", "backend", "seed", "modeled ms", "best");
    for job in jobs {
        match job {
            Ok(rep) => println!(
                "{:<42} {:>6} {:>12.3} {:>6}",
                rep.backend.label(),
                rep.seed,
                rep.modeled_ms,
                rep.best_len
            ),
            Err(e) => println!("job failed: {e}"),
        }
    }

    let stats = engine.cache_stats();
    println!(
        "\ncache: {} artifact hits / {} misses, {} decision hits / {} misses",
        stats.artifact_hits, stats.artifact_misses, stats.decision_hits, stats.decision_misses
    );
}
