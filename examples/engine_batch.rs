//! Batch solving with the engine: one seed study, three backends, shared
//! artifacts, cost-model auto-selection — then the job-lifecycle surface
//! (progress streaming, re-prioritisation, mid-flight cancellation).
//!
//! ```text
//! cargo run --release --example engine_batch
//! ```

use std::sync::Arc;

use aco_gpu::core::cpu::TourPolicy;
use aco_gpu::core::gpu::{PheromoneStrategy, TourStrategy};
use aco_gpu::core::AcoParams;
use aco_gpu::engine::{
    Backend, Engine, EngineConfig, GpuDevice, JobOutcome, LocalSearch, Priority, SolveRequest,
};
use aco_gpu::tsp;

fn main() {
    // One shared instance; every job reuses its cached NN lists.
    let inst = Arc::new(tsp::uniform_random("demo120", 120, 1200.0, 42));
    let params = AcoParams::default().nn(20);
    let iterations = 10;

    let engine = Engine::new(EngineConfig::default());
    println!("engine: {} workers, instance {} (n = {})", engine.workers(), inst.name(), inst.n());

    // A seed study across three explicit backends plus `auto`.
    let backends = [
        Backend::CpuSequential { policy: TourPolicy::NearestNeighborList },
        Backend::CpuParallel { policy: TourPolicy::NearestNeighborList, threads: 4 },
        Backend::Gpu {
            device: GpuDevice::TeslaM2050,
            tour: TourStrategy::DataParallelTex,
            pheromone: PheromoneStrategy::AtomicShared,
        },
        Backend::Auto,
    ];
    let jobs = engine.run_batch(backends.iter().flat_map(|backend| {
        (0..3).map(|seed| {
            SolveRequest::new(Arc::clone(&inst), params.clone())
                .backend(backend.clone())
                .iterations(iterations)
                .seed(seed)
        })
    }));

    println!("\n{:<42} {:>6} {:>12} {:>6}", "backend", "seed", "modeled ms", "best");
    for job in jobs {
        match job {
            Ok(rep) => println!(
                "{:<42} {:>6} {:>12.3} {:>6}",
                rep.backend.label(),
                rep.seed,
                rep.modeled_ms,
                rep.best_len
            ),
            Err(e) => println!("job failed: {e}"),
        }
    }

    let stats = engine.cache_stats();
    println!(
        "\ncache: {} artifact hits / {} misses, {} decision hits / {} misses",
        stats.artifact_hits, stats.artifact_misses, stats.decision_hits, stats.decision_misses
    );

    // --- The lifecycle surface: progress, priority, cancellation -------
    println!("\nlifecycle demo:");
    let watched = engine.submit(
        SolveRequest::new(Arc::clone(&inst), params.clone())
            .backend(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList })
            .iterations(iterations)
            .seed(99)
            .local_search(LocalSearch::PostPass),
    );
    let urgent = engine.submit(
        SolveRequest::new(Arc::clone(&inst), params.clone())
            .backend(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList })
            .iterations(iterations)
            .seed(100),
    );
    urgent.set_priority(Priority::High);
    let doomed = engine.submit(
        SolveRequest::new(Arc::clone(&inst), params.clone())
            .backend(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList })
            .iterations(1_000_000) // would run far too long --
            .seed(101),
    );

    // Follow the watched job's convergence live.
    for ev in watched.progress() {
        println!(
            "  watched: iter {:>3} iter-best {:>6} best {:>6}",
            ev.iteration, ev.iter_best, ev.best_so_far
        );
    }
    let watched = watched.wait().expect("watched job solves");
    println!(
        "  watched: {:?} after {} iters, best {} (2-opt polished)",
        watched.outcome, watched.iterations, watched.best_len
    );
    let urgent = urgent.wait().expect("urgent job solves");
    println!("  urgent:  {:?} best {}", urgent.outcome, urgent.best_len);

    // -- so cancel it after its first progress event.
    doomed.progress().next();
    doomed.cancel();
    match doomed.wait() {
        Ok(rep) => {
            assert_eq!(rep.outcome, JobOutcome::Cancelled);
            println!(
                "  doomed:  {:?} after {} of 1000000 iters, partial best {}",
                rep.outcome, rep.iterations, rep.best_len
            );
        }
        Err(e) => println!("  doomed:  cancelled before first iteration ({e})"),
    }
}
