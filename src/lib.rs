//! Umbrella crate re-exporting the GPU-ACO reproduction workspace.
//!
//! See [`aco_core`] for the Ant System (CPU reference + GPU strategies),
//! [`aco_simt`] for the SIMT simulator, [`aco_tsp`] for the TSP substrate,
//! [`aco_devices`] for the simulated multi-GPU device pool and
//! [`aco_engine`] for the concurrent batch-solve engine. The
//! `examples/` directory demonstrates the public API; `crates/bench`
//! regenerates every table and figure of the paper.

pub use aco_core as core;
pub use aco_devices as devices;
pub use aco_engine as engine;
pub use aco_faults as faults;
pub use aco_localsearch as localsearch;
pub use aco_obs as obs;
pub use aco_simt as simt;
pub use aco_tsp as tsp;
