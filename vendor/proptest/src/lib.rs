//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored
//! micro-crate implements the subset of proptest the workspace's property
//! tests use: the [`proptest!`] macro with an optional
//! `#![proptest_config(..)]` header, [`Strategy`] with `prop_map`, range
//! and tuple strategies, [`any`], `prop::collection::vec`, and the
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * no shrinking — a failing case reports its case index and message only;
//! * case generation is deterministic per test (seeded from the test name),
//!   so failures reproduce exactly across runs and machines.

use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed directly.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seed deterministically from a test name (FNV-1a hash).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A failed test case (what `prop_assert!` returns).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build from any message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration; only `cases` is honoured (no shrinking, no fork).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for source compatibility; unused (no shrinking here).
    pub max_shrink_iters: u32,
    /// Accepted for source compatibility; unused.
    pub fork: bool,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0, fork: false }
    }
}

/// Something that can generate values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128).wrapping_add(rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                (lo as u128).wrapping_add(rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.next_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical unconstrained strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A vector of values from `elem`, sized within `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Alias of the crate root, so `prop::collection::vec` resolves like it
    /// does with the real proptest prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}` at {}:{}",
                lhs,
                rhs,
                file!(),
                line!()
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                lhs,
                rhs,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}` at {}:{}",
                lhs,
                rhs,
                file!(),
                line!()
            )));
        }
    }};
}

/// The property-test harness macro. Each `fn` runs `cases` times with
/// freshly generated inputs; `prop_assert*` failures abort that case with a
/// panic naming the case index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {}: case {}/{} failed: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_maps_compose(
            n in 3usize..9,
            x in -10i64..10,
            f in 0.0f64..1.0,
            flag in any::<bool>(),
            v in prop::collection::vec(0u64..100, 1..5),
        ) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((-10..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
            prop_assert!(usize::from(flag) <= 1);
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn tuple_strategies_feed_prop_map(
            pair in (1usize..4, 10u64..20).prop_map(|(a, b)| a as u64 * b),
        ) {
            prop_assert!((10..80).contains(&pair));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
