//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! micro-crate provides exactly the surface the workspace uses:
//!
//! * [`Rng::gen_range`] over half-open and inclusive integer/float ranges,
//! * [`rngs::StdRng`] with [`SeedableRng::seed_from_u64`] (deterministic),
//! * [`thread_rng`] (nondeterministically seeded, test-convenience only).
//!
//! The generator is SplitMix64 — not cryptographic, but statistically fine
//! for tests, instance generation, and benchmarks. It is **not**
//! stream-compatible with the real `rand::rngs::StdRng`; everything in this
//! repository that cares about exact streams pins its own PRNG
//! (`aco_simt::rng::PmRng`) instead.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: 64 random bits per call.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types a uniform range can be sampled from.
pub trait SampleRange<T> {
    /// Draw one value from `self` using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128).wrapping_add(rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                (lo as u128).wrapping_add(rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                let v = self.start + unit * (self.end - self.start);
                // Half-open contract: `unit` can round to 1.0 (always for
                // f32's 24-bit mantissa, rarely for f64) and the affine map
                // can round up to `end`; clamp to the largest value below.
                if v < self.end { v } else { self.end.next_down().max(self.start) }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// The user-facing randomness API (blanket-implemented for every
/// [`RngCore`], like the real crate).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction, `seed_from_u64` only.
pub trait SeedableRng: Sized {
    /// Build a reproducible generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Per-call nondeterministic generator behind [`super::thread_rng`].
    #[derive(Debug, Clone)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// A generator seeded from the wall clock and a process-wide counter —
/// unpredictable between runs, which is all the tests using it need.
pub fn thread_rng() -> rngs::ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    rngs::ThreadRng(<rngs::StdRng as SeedableRng>::seed_from_u64(
        nanos ^ unique.rotate_left(32) ^ 0xA0C0_FFEE_0000_0001,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(0usize..=4);
            assert!(y <= 4);
            let f = rng.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn distinct_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
