//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored
//! micro-crate gives the workspace's benches a source-compatible harness:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size`, [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — a warm-up pass, then `samples`
//! timed runs reporting min / median / mean — with no statistics engine,
//! plots, or saved baselines. Numbers print to stdout.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Runs one benchmark body repeatedly and records timings.
pub struct Bencher {
    samples: usize,
    recorded: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, once per sample, after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up: touch caches, fault pages
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.recorded.push(t0.elapsed());
        }
    }
}

fn report(name: &str, recorded: &mut [Duration]) {
    if recorded.is_empty() {
        println!("{name:<60} (no samples)");
        return;
    }
    recorded.sort_unstable();
    let min = recorded[0];
    let median = recorded[recorded.len() / 2];
    let mean = recorded.iter().sum::<Duration>() / recorded.len() as u32;
    println!(
        "{name:<60} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
        min,
        median,
        mean,
        recorded.len()
    );
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let mut b = Bencher { samples: self.criterion.sample_size, recorded: Vec::new() };
        f(&mut b);
        report(&full, &mut b.recorded);
        self
    }

    /// End the group (kept for source compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Run a single free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: self.sample_size, recorded: Vec::new() };
        f(&mut b);
        report(id, &mut b.recorded);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self }
    }
}

/// Declare a group function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare `main` for a bench binary (use with `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut count = 0u64;
        g.bench_function("inc", |b| b.iter(|| count += 1));
        g.finish();
        // 3 samples + 1 warm-up call.
        assert_eq!(count, 4);
    }
}
